"""The sketch-engine registry: one name, one guarantee, one wire tag.

The library ships three interchangeable engines behind the runtime-
checkable :class:`~repro.core.protocols.SketchProtocol`:

=========  ==========================  ===========  ==========
engine     guarantee                   mergeable    wire magic
=========  ==========================  ===========  ==========
paper      deterministic (Lemma 5)     yes          MRLSKT01
kll        probabilistic (Hoeffding)   yes          KLLSKT01
frugal     heuristic (no bound)        no           FRGSKT01
windowed   inherits its inner engine   yes          WINSKT01
expdecay   inherits its inner engine   yes          EXDSKT01
=========  ==========================  ===========  ==========

``windowed`` and ``expdecay`` (:mod:`repro.windows`) are *composite*
engines: a ring of buckets, each itself a paper/kll/frugal sketch.
They carry their inner engine in their own wire format, so the usual
magic dispatch and same-engine merge rules apply to them unchanged.

Every engine's serialised form starts with its 8-byte magic, so a
payload is self-describing: :func:`engine_of` reads the tag,
:func:`loads_any` / :func:`load_any_from` / :func:`dumps_any` dispatch
on it, and :func:`repro.core.serialize.merge_serialized` uses the same
peek to refuse mixed-engine folds with a typed
:class:`~repro.core.errors.EngineMismatchError`.  The service snapshot
and FETCH paths route through here, which is what lets a mixed-engine
registry journal, snapshot and recover bit-identically.

See docs/api.md for the engine-selection table with measured numbers
(BENCH_engines.json).
"""

from __future__ import annotations

from typing import Any, BinaryIO, Callable, Dict, NamedTuple, Tuple

from .errors import ConfigurationError, StorageError

__all__ = [
    "EngineSpec",
    "ENGINES",
    "ENGINE_NAMES",
    "DEFAULT_ENGINE",
    "engine_of",
    "engine_of_sketch",
    "loads_any",
    "load_any_from",
    "dumps_any",
]

DEFAULT_ENGINE = "paper"


class EngineSpec(NamedTuple):
    """Static description of one sketch engine."""

    name: str
    magic: bytes
    #: summaries combine via ``absorb`` with the guarantee preserved
    mergeable: bool
    #: ``error_bound()`` is a certified bound (not ``inf``)
    certified: bool
    loads: Callable[[bytes], Any]
    read_from: Callable[[BinaryIO], Any]
    dumps: Callable[[Any], bytes]


def _paper_spec() -> EngineSpec:
    from . import serialize

    return EngineSpec(
        name="paper",
        magic=b"MRLSKT01",
        mergeable=True,
        certified=True,
        loads=serialize.loads,
        read_from=serialize.load_from,
        dumps=serialize.dumps,
    )


def _kll_spec() -> EngineSpec:
    from .kll import KLL_MAGIC, KLLSketch

    return EngineSpec(
        name="kll",
        magic=KLL_MAGIC,
        mergeable=True,
        certified=True,
        loads=KLLSketch.from_bytes,
        read_from=KLLSketch.read_from,
        dumps=lambda sk: sk.to_bytes(),
    )


def _frugal_spec() -> EngineSpec:
    from .frugal import FRUGAL_MAGIC, FrugalSketch

    return EngineSpec(
        name="frugal",
        magic=FRUGAL_MAGIC,
        mergeable=False,
        certified=False,
        loads=FrugalSketch.from_bytes,
        read_from=FrugalSketch.read_from,
        dumps=lambda sk: sk.to_bytes(),
    )


def _windowed_spec() -> EngineSpec:
    # repro.windows imports core; resolve it lazily at call time so the
    # registry can be built while the core package is still importing
    def _loads(raw: bytes) -> Any:
        from ..windows import WindowedSketch

        return WindowedSketch.from_bytes(raw)

    def _read_from(fh: BinaryIO) -> Any:
        from ..windows import WindowedSketch

        return WindowedSketch.read_from(fh)

    return EngineSpec(
        name="windowed",
        magic=b"WINSKT01",
        mergeable=True,
        certified=True,
        loads=_loads,
        read_from=_read_from,
        dumps=lambda sk: sk.to_bytes(),
    )


def _expdecay_spec() -> EngineSpec:
    def _loads(raw: bytes) -> Any:
        from ..windows import ExpDecaySketch

        return ExpDecaySketch.from_bytes(raw)

    def _read_from(fh: BinaryIO) -> Any:
        from ..windows import ExpDecaySketch

        return ExpDecaySketch.read_from(fh)

    return EngineSpec(
        name="expdecay",
        magic=b"EXDSKT01",
        mergeable=True,
        certified=True,
        loads=_loads,
        read_from=_read_from,
        dumps=lambda sk: sk.to_bytes(),
    )


#: name -> spec for every engine the library ships
ENGINES: Dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        _paper_spec(),
        _kll_spec(),
        _frugal_spec(),
        _windowed_spec(),
        _expdecay_spec(),
    )
}

ENGINE_NAMES: Tuple[str, ...] = tuple(ENGINES)

_BY_MAGIC: Dict[bytes, EngineSpec] = {
    spec.magic: spec for spec in ENGINES.values()
}


def get_engine(name: str) -> EngineSpec:
    """The spec for *name*, or :class:`ConfigurationError` if unknown."""
    spec = ENGINES.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown sketch engine {name!r}; choose one of {ENGINE_NAMES}"
        )
    return spec


def engine_of(payload: "bytes | bytearray | memoryview") -> str:
    """Engine name a serialised summary belongs to (peeks the magic tag)."""
    head = bytes(payload[:8])
    spec = _BY_MAGIC.get(head)
    if spec is None:
        raise StorageError(
            f"bad magic {head!r}: not a serialised sketch of any known engine"
        )
    return spec.name


def engine_of_sketch(sketch: Any) -> str:
    """Engine name of a live sketch object."""
    from .framework import QuantileFramework
    from .frugal import FrugalBank, FrugalSketch
    from .kll import KLLSketch
    from ..windows import ExpDecaySketch, WindowedSketch

    if isinstance(sketch, WindowedSketch):
        return "windowed"
    if isinstance(sketch, ExpDecaySketch):
        return "expdecay"
    if isinstance(sketch, (FrugalSketch, FrugalBank)):
        return "frugal"
    if isinstance(sketch, KLLSketch):
        return "kll"
    if isinstance(sketch, QuantileFramework):
        return "paper"
    # sketch/adaptive wrappers around the paper framework
    return "paper"


def loads_any(raw: bytes) -> Any:
    """Deserialise a summary of any engine (dispatch on the magic tag)."""
    return ENGINES[engine_of(raw)].loads(raw)


def load_any_from(fh: BinaryIO) -> Any:
    """Read one summary of any engine from *fh* (self-delimiting formats).

    Peeks the 8-byte magic; works on non-seekable streams by wrapping
    the peeked prefix back in front of the remaining stream.
    """
    import io

    head = fh.read(8)
    if len(head) < 8:
        raise StorageError("truncated sketch: no engine magic")
    spec = _BY_MAGIC.get(head)
    if spec is None:
        raise StorageError(
            f"bad magic {head!r}: not a serialised sketch of any known engine"
        )

    class _Rejoined(io.RawIOBase):
        def __init__(self) -> None:
            self._head = head

        def readable(self) -> bool:  # pragma: no cover - io protocol
            return True

        def read(self, size: int = -1) -> bytes:
            if self._head:
                if size < 0 or size >= len(self._head):
                    out, self._head = self._head, b""
                    return out
                out, self._head = self._head[:size], self._head[size:]
                return out
            return fh.read(size)

    return spec.read_from(_Rejoined())  # type: ignore[arg-type]


def dumps_any(sketch: Any) -> bytes:
    """Serialise a live sketch of any engine to its wire format.

    Paper-engine wrappers (:class:`~repro.core.sketch.QuantileSketch`)
    serialise their inner framework -- the wire format only carries
    summary state, so the round-trip comes back as the framework, same
    as :func:`repro.core.serialize.dumps`.
    """
    name = engine_of_sketch(sketch)
    if name == "paper":
        from .framework import QuantileFramework

        inner = getattr(sketch, "_impl", None)
        if not isinstance(sketch, QuantileFramework) and isinstance(
            inner, QuantileFramework
        ):
            sketch = inner
    return ENGINES[name].dumps(sketch)
