"""Core of the reproduction: the MRL one-pass quantile framework.

Public surface:

* :class:`QuantileSketch` / :func:`approximate_quantiles` -- what most
  callers want;
* :class:`QuantileFramework` -- the explicit ``(b, k, policy)`` machinery;
* :mod:`~repro.core.parameters` -- optimal configuration selection
  (Table 1);
* :mod:`~repro.core.sampling` -- the Section 5 sampling front-end
  (Table 2, Figure 8);
* :class:`ParallelQuantileEngine` -- the Section 4.9 partitioned mode;
* :class:`TreeRecorder` -- collapse-tree capture (Figures 2-4, Lemma 5).
"""

from . import kernels
from .buffer import MINUS_INF, PLUS_INF, Buffer
from .engines import (
    ENGINES,
    ENGINE_NAMES,
    EngineSpec,
    dumps_any,
    engine_of,
    load_any_from,
    loads_any,
)
from .errors import (
    CapacityExceededError,
    ConfigurationError,
    EmptySummaryError,
    EngineMismatchError,
    QueryError,
    ReproError,
    SQLSyntaxError,
    StorageError,
    StreamExhaustedError,
    WorkerError,
)
from .frugal import FrugalBank, FrugalSketch
from .kll import KLLSketch
from .framework import QuantileFramework
from .operations import (
    OffsetSelector,
    augmented_phi,
    collapse,
    output,
    weighted_select,
)
from .parallel import ParallelQuantileEngine, merge_frameworks
from .protocols import DESCRIBE_PHIS, SketchProtocol, describe_dict
from .parameters import (
    ClosedFormStats,
    ParameterPlan,
    alsabti_ranka_singh_stats,
    best_over_policies,
    munro_paterson_stats,
    new_algorithm_stats,
    optimal_parameters,
    parameter_table,
)
from .policies import (
    AlsabtiRankaSinghPolicy,
    CollapsePolicy,
    MunroPatersonPolicy,
    NewPolicy,
    make_policy,
)
from .sampling import (
    SampledQuantileFramework,
    SamplingPlan,
    choose_strategy,
    hoeffding_sample_size,
    optimize_alpha,
    sampling_threshold,
)
from .adaptive import AdaptiveQuantileSketch
from .bank import SketchBank
from .serialize import dump, dumps, load, loads
from .sketch import QuantileSketch, approximate_quantiles
from .tree import TreeNode, TreeRecorder, TreeStats

__all__ = [
    "kernels",
    "Buffer",
    "MINUS_INF",
    "PLUS_INF",
    "OffsetSelector",
    "augmented_phi",
    "collapse",
    "output",
    "weighted_select",
    "QuantileFramework",
    "QuantileSketch",
    "SketchBank",
    "AdaptiveQuantileSketch",
    "KLLSketch",
    "FrugalSketch",
    "FrugalBank",
    "EngineSpec",
    "ENGINES",
    "ENGINE_NAMES",
    "engine_of",
    "loads_any",
    "load_any_from",
    "dumps_any",
    "approximate_quantiles",
    "dump",
    "dumps",
    "load",
    "loads",
    "ParallelQuantileEngine",
    "merge_frameworks",
    "SketchProtocol",
    "DESCRIBE_PHIS",
    "describe_dict",
    "CollapsePolicy",
    "MunroPatersonPolicy",
    "AlsabtiRankaSinghPolicy",
    "NewPolicy",
    "make_policy",
    "ClosedFormStats",
    "ParameterPlan",
    "optimal_parameters",
    "best_over_policies",
    "parameter_table",
    "munro_paterson_stats",
    "alsabti_ranka_singh_stats",
    "new_algorithm_stats",
    "SamplingPlan",
    "SampledQuantileFramework",
    "hoeffding_sample_size",
    "optimize_alpha",
    "sampling_threshold",
    "choose_strategy",
    "TreeNode",
    "TreeRecorder",
    "TreeStats",
    "ReproError",
    "ConfigurationError",
    "EngineMismatchError",
    "StreamExhaustedError",
    "CapacityExceededError",
    "EmptySummaryError",
    "WorkerError",
    "StorageError",
    "QueryError",
    "SQLSyntaxError",
]
