"""Serialisation of quantile summaries.

A summary that took a full pass over a billion-row table to build is worth
keeping: real deployments persist sketches next to the data (statistics
catalogs), ship them between nodes (the §4.9 parallel mode), or merge
yesterday's sketch with today's.  This module provides a compact, versioned
binary format for :class:`~repro.core.framework.QuantileFramework` (and a
thin wrapper for :class:`~repro.core.sketch.QuantileSketch`):

* fixed little-endian header: magic, version, configuration (b, k, policy,
  offset mode and its alternation state), counters (n, C, W);
* one record per full buffer: weight, level, pad counts, k float64 values;
* the staged remainder (not yet buffer-aligned input), if any.

Only numeric summaries serialise -- generic-object summaries would need
pickling, which this library deliberately avoids (loading pickles from
disk is an arbitrary-code-execution hazard; a statistics catalog must be
safe to read).

Round-trip guarantee: ``loads(dumps(fw))`` answers every quantile query
identically to ``fw`` and reports the same certified error bound.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable

import numpy as np

from .buffer import Buffer
from .errors import ConfigurationError, StorageError
from .framework import QuantileFramework

__all__ = [
    "dumps",
    "loads",
    "dump",
    "load",
    "load_from",
    "merge_serialized",
    "FORMAT_VERSION",
]

_MAGIC = b"MRLSKT01"
FORMAT_VERSION = 1

# magic, version, b, k, policy_id, offset_mode_id, even_toggle,
# n, n_collapses, sum_collapse_weights, n_buffers, remainder_len, min, max
_HEADER = struct.Struct("<8sHIIBBBxQQQIQdd")
# weight, level, n_low_pad, n_high_pad
_BUFFER_HEADER = struct.Struct("<QiII")

_POLICY_IDS = {"new": 0, "munro-paterson": 1, "alsabti-ranka-singh": 2}
_POLICY_NAMES = {v: k for k, v in _POLICY_IDS.items()}
_OFFSET_IDS = {"alternate": 0, "low": 1, "high": 2}
_OFFSET_NAMES = {v: k for k, v in _OFFSET_IDS.items()}


def dump(fw: QuantileFramework, fh: BinaryIO) -> None:
    """Write *fw* to the binary file object *fh*."""
    fw._flush_scalars()
    if fw._mode == "generic":
        raise ConfigurationError(
            "only numeric summaries serialise; generic-object buffers "
            "would require unsafe pickling"
        )
    if fw.policy.name not in _POLICY_IDS:
        raise ConfigurationError(
            f"cannot serialise custom policy {fw.policy.name!r}"
        )
    remainder = fw._remainder
    rem = (
        np.asarray(remainder, dtype="<f8")
        if remainder is not None and len(remainder)
        else np.empty(0, dtype="<f8")
    )
    fh.write(
        _HEADER.pack(
            _MAGIC,
            FORMAT_VERSION,
            fw.b,
            fw.k,
            _POLICY_IDS[fw.policy.name],
            _OFFSET_IDS[fw._offsets.mode],
            1 if fw._offsets._next_even_is_high else 0,
            fw._n,
            fw._n_collapses,
            fw._sum_collapse_weights,
            len(fw._full),
            len(rem),
            fw._min if fw._min is not None else float("nan"),
            fw._max if fw._max is not None else float("nan"),
        )
    )
    for buf in fw._full:
        if not buf.is_numeric:
            raise ConfigurationError(
                "only numeric summaries serialise; generic-object buffers "
                "would require unsafe pickling"
            )
        fh.write(
            _BUFFER_HEADER.pack(
                buf.weight, buf.level, buf.n_low_pad, buf.n_high_pad
            )
        )
        fh.write(np.ascontiguousarray(buf.values, dtype="<f8").tobytes())
    fh.write(rem.tobytes())


def dumps(fw: QuantileFramework) -> bytes:
    """Serialise *fw* to bytes."""
    out = io.BytesIO()
    dump(fw, out)
    return out.getvalue()


def _read_exact(fh: BinaryIO, size: int, what: str) -> bytes:
    """Read exactly *size* bytes, looping over short reads.

    Plain files return everything in one ``read`` call, but sockets and
    pipes may return any non-empty prefix; both are handled here so the
    same reader serves :func:`load` and :func:`load_from`.
    """
    chunks = []
    remaining = size
    while remaining:
        piece = fh.read(remaining)
        if not piece:
            raise StorageError(
                f"truncated sketch: expected {size} bytes of {what}"
            )
        chunks.append(piece)
        remaining -= len(piece)
    if len(chunks) == 1:
        return chunks[0]
    return b"".join(chunks)


def load(fh: BinaryIO) -> QuantileFramework:
    """Read a summary previously written by :func:`dump`.

    Expects *fh* to contain exactly one serialised summary and raises
    :class:`StorageError` on trailing bytes.  For streams that carry
    further data after the summary (sockets, framed protocols), use
    :func:`load_from`, which stops at the format's own end marker.
    """
    fw = load_from(fh)
    trailing = fh.read(1)
    if trailing:
        raise StorageError("corrupt sketch: trailing bytes after payload")
    return fw


def load_from(fh: BinaryIO) -> QuantileFramework:
    """Read one summary from *fh*, leaving the stream position just past it.

    Works on non-seekable file objects (sockets, pipes, ``sys.stdin.buffer``)
    because the format is self-delimiting: the header carries every length,
    short reads are retried, and no trailing probe is issued -- the §4.9
    exchange mode (summaries shipped between nodes over a connection)
    deserialises straight off the wire.
    """
    header = _read_exact(fh, _HEADER.size, "header")
    (
        magic,
        version,
        b,
        k,
        policy_id,
        offset_id,
        even_toggle,
        n,
        n_collapses,
        sum_weights,
        n_buffers,
        remainder_len,
        min_value,
        max_value,
    ) = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise StorageError(f"bad magic {magic!r}: not a serialised sketch")
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported sketch format version {version}")
    if policy_id not in _POLICY_NAMES or offset_id not in _OFFSET_NAMES:
        raise StorageError("corrupt sketch header (unknown policy/offset)")
    if n_buffers > b:
        raise StorageError(
            f"corrupt sketch: {n_buffers} full buffers exceed b={b}"
        )
    fw = QuantileFramework(
        b, k, policy=_POLICY_NAMES[policy_id],
        offset_mode=_OFFSET_NAMES[offset_id],
    )
    fw._offsets._next_even_is_high = bool(even_toggle)
    fw._n = n
    fw._n_collapses = n_collapses
    fw._sum_collapse_weights = sum_weights
    fw._mode = "numeric"
    fw._min = None if np.isnan(min_value) else min_value
    fw._max = None if np.isnan(max_value) else max_value
    for _ in range(n_buffers):
        raw = _read_exact(fh, _BUFFER_HEADER.size, "buffer header")
        weight, level, n_low, n_high = _BUFFER_HEADER.unpack(raw)
        values = np.frombuffer(
            _read_exact(fh, 8 * k, "buffer payload"), dtype="<f8"
        ).copy()
        if n_low + n_high > k:
            raise StorageError("corrupt sketch: pad counts exceed capacity")
        fw._full.append(
            Buffer(
                values=values,
                weight=weight,
                level=level,
                n_low_pad=n_low,
                n_high_pad=n_high,
            )
        )
    fw._remainder = np.frombuffer(
        _read_exact(fh, 8 * remainder_len, "remainder"), dtype="<f8"
    ).copy()
    return fw


def loads(raw: bytes) -> QuantileFramework:
    """Deserialise a summary from bytes."""
    return load(io.BytesIO(raw))


def merge_serialized(payloads: "Iterable[bytes]"):
    """Merge serialised summaries into one sketch (shard fan-in).

    This is the receiving half of the §4.9 exchange: every shard ships its
    summary in its engine's wire format (exactly what the process backend
    of :class:`~repro.core.parallel.ParallelQuantileEngine` and the
    service's ``FETCH`` command emit), and the coordinator folds them into
    a single summary via ``absorb`` -- for the paper engine the combined
    collapse forest still satisfies Lemma 5, for KLL the Hoeffding
    accounting adds, so the merged ``error_bound()`` stays certified.

    Engine handling: the payloads' magic tags must all name the *same*
    engine -- mixing raises a typed
    :class:`~repro.core.errors.EngineMismatchError` rather than
    attempting a garbled fold.  A non-mergeable engine (frugal) accepts
    exactly one payload (a plain load); two or more raise
    :class:`ConfigurationError`.  Same-engine merges are deterministic:
    payloads fold in iteration order, so every coordinator produces
    byte-identical results.
    """
    from .engines import ENGINES, engine_of
    from .errors import EngineMismatchError

    merged = None
    spec = None
    for raw in payloads:
        name = engine_of(raw)
        if spec is None:
            spec = ENGINES[name]
        elif name != spec.name:
            raise EngineMismatchError(
                f"cannot merge summaries from different engines: "
                f"{spec.name!r} vs {name!r}"
            )
        sk = spec.loads(raw)
        if merged is None:
            merged = sk
        else:
            if not spec.mergeable:
                raise ConfigurationError(
                    f"{spec.name!r} summaries are not mergeable; "
                    "fetch and query them individually"
                )
            merged.absorb(sk)
    if merged is None:
        raise ConfigurationError("merge_serialized needs at least one payload")
    return merged
