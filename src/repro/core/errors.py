"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting genuine programming errors (``TypeError``
from user callbacks, ``KeyboardInterrupt``, ...) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm was configured with invalid or inconsistent parameters.

    Raised, for example, for a non-positive buffer count, an approximation
    guarantee outside ``(0, 1)``, or a quantile fraction outside ``[0, 1]``.
    """


class EngineMismatchError(ConfigurationError):
    """Serialised summaries from *different* sketch engines were combined.

    Every engine writes its own magic tag (``MRLSKT01`` paper,
    ``KLLSKT01`` KLL, ``FRGSKT01`` Frugal); folding payloads with
    different tags has no defined semantics, so
    :func:`repro.core.serialize.merge_serialized` raises this instead of
    producing a garbled merge.  The message names both engines.
    """


class StreamExhaustedError(ReproError, RuntimeError):
    """More elements were requested from a stream than it can supply."""


class CapacityExceededError(ReproError, RuntimeError):
    """A one-pass summary received more elements than it was sized for.

    The deterministic MRL algorithm promises an ``epsilon``-approximate
    answer only for datasets up to the ``n`` it was configured with.  By
    default the framework keeps accepting input past that point (the
    a-posteriori bound from :meth:`QuantileFramework.error_bound
    <repro.core.framework.QuantileFramework.error_bound>` remains exact),
    but callers may request strict mode, in which case this error is raised
    instead.
    """


class EmptySummaryError(ReproError, RuntimeError):
    """A quantile query was issued against a summary that saw no data."""


class WorkerError(ReproError, RuntimeError):
    """A parallel worker process failed or became unreachable.

    The message carries the worker index and the re-raised failure text;
    the parent engine raises it when it collects worker summaries.
    """


class StorageError(ReproError, IOError):
    """A failure in the mini storage engine (corrupt page, bad magic, ...)."""


class QueryError(ReproError, ValueError):
    """An invalid query against the mini table engine (unknown column, ...)."""


class SQLSyntaxError(QueryError):
    """The miniature SQL front-end could not parse a statement."""
