"""The instrumentation gate: module-level state the hot paths consult.

Design constraint: the core ingest loop must pay (almost) nothing when
observability is off.  Every instrumented call site in
:mod:`repro.core` is guarded by a single module-attribute read::

    from ..obs import hooks as _obs
    ...
    if _obs.ENABLED:
        _obs.on_collapse(self, group, result, weight, offset)

``ENABLED`` is a plain module global -- the disabled cost is one
attribute load plus a branch, and the guards sit at *buffer/chunk*
granularity (one per NEW/COLLAPSE/chunk, never per element), so the
per-element overhead is ~1/k of an attribute read.  The benchmark gate
(``bench_hotpath.py --quick``, section ``obs``) measures exactly this
and CI asserts it stays under 2%.

:func:`enable` installs a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer` (defaults are created on demand);
:func:`disable` turns the gate off but keeps both readable, so a
benchmark can flip instrumentation without losing what it collected.

Per-sketch statistics (NEW/COLLAPSE counts per level, the running
certified bound) live in a lazily attached :class:`SketchObsStats` on
each observed framework -- the service reads these to report per-metric
collapse trees and live epsilon*N without a global registry lookup per
metric.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "tracer",
    "SketchObsStats",
    "stats_for",
    "collected_stats",
]

#: THE gate.  Core call sites read this exactly once per hook site.
ENABLED = False

_registry: Optional[Any] = None  # MetricsRegistry
_tracer: Optional[Any] = None  # Tracer


def enable(
    registry: Optional[Any] = None,
    tracer: Optional[Any] = None,
    *,
    ring_capacity: int = 1024,
) -> Any:
    """Turn instrumentation on; returns the active registry.

    Passing an existing registry/tracer reuses it (the service passes
    its own so STATS can render the collected families); otherwise
    fresh defaults are created on first enable and kept across
    enable/disable cycles.
    """
    global ENABLED, _registry, _tracer
    if registry is not None:
        _registry = registry
    elif _registry is None:
        from .metrics import MetricsRegistry

        _registry = MetricsRegistry()
    if tracer is not None:
        _tracer = tracer
    elif _tracer is None:
        from .trace import Tracer

        _tracer = Tracer(ring_capacity=ring_capacity)
    ENABLED = True
    return _registry


def disable() -> None:
    """Turn the gate off (collected state stays readable)."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


def registry() -> Any:
    """The active registry (created on demand even while disabled)."""
    global _registry
    if _registry is None:
        from .metrics import MetricsRegistry

        _registry = MetricsRegistry()
    return _registry


def tracer() -> Any:
    """The active tracer (created on demand even while disabled)."""
    global _tracer
    if _tracer is None:
        from .trace import Tracer

        _tracer = Tracer()
    return _tracer


def reset() -> None:
    """Drop gate + collected state entirely (test isolation)."""
    global ENABLED, _registry, _tracer, _hot
    ENABLED = False
    _registry = None
    _tracer = None
    _hot = None


# -- cached instrument handles ------------------------------------------------


class _HotHandles:
    """Instrument handles resolved once, not per event.

    ``registry().counter(name, **labels)`` builds a labels dict, sorts
    it into a key tuple and does two dict lookups -- fine for one-off
    reads, but the NEW/COLLAPSE hooks fire thousands of times per
    second under service ingest and the lookup chain was ~10% of server
    CPU.  Handles are plain attribute/dict reads here; the cache
    revalidates with a single identity check so registry swaps
    (``enable(registry=...)``, ``reset()``) stay correct.
    """

    __slots__ = (
        "registry",
        "new_by_level",
        "collapse_by_level",
        "buffers_gauge",
        "output",
        "elements_ingested",
        "bytes_ingested",
        "bank_chunks",
        "bank_elements",
        "bank_runs",
        "engine_events",
    )

    def __init__(self, reg: Any) -> None:
        self.registry = reg
        self.new_by_level: Dict[int, Any] = {}
        self.collapse_by_level: Dict[int, Any] = {}
        self.buffers_gauge = reg.gauge("core.buffers_in_use")
        self.output = reg.counter("core.output")
        self.elements_ingested = reg.counter("core.elements_ingested")
        self.bytes_ingested = reg.counter("core.bytes_ingested")
        self.bank_chunks = reg.counter("bank.chunks")
        self.bank_elements = reg.counter("bank.elements")
        self.bank_runs = reg.counter("bank.runs")
        self.engine_events: Dict[Any, Any] = {}


_hot: Optional[_HotHandles] = None


def _handles() -> _HotHandles:
    global _hot
    reg = registry()
    hot = _hot
    if hot is None or hot.registry is not reg:
        hot = _hot = _HotHandles(reg)
    return hot


# -- per-sketch statistics ----------------------------------------------------


class SketchObsStats:
    """Per-framework operation counts and the running certified bound."""

    __slots__ = (
        "new_by_level",
        "collapses_by_level",
        "outputs",
        "elements",
        "last_bound",
    )

    def __init__(self) -> None:
        self.new_by_level: Dict[int, int] = {}
        self.collapses_by_level: Dict[int, int] = {}
        self.outputs = 0
        self.elements = 0
        self.last_bound = 0.0

    @property
    def n_new(self) -> int:
        return sum(self.new_by_level.values())

    @property
    def n_collapses(self) -> int:
        return sum(self.collapses_by_level.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "new_by_level": {str(k): v for k, v in sorted(self.new_by_level.items())},
            "collapses_by_level": {
                str(k): v for k, v in sorted(self.collapses_by_level.items())
            },
            "outputs": self.outputs,
            "elements": self.elements,
            "certified_bound": self.last_bound,
        }

    def merge(self, other: "SketchObsStats") -> None:
        for level, count in other.new_by_level.items():
            self.new_by_level[level] = self.new_by_level.get(level, 0) + count
        for level, count in other.collapses_by_level.items():
            self.collapses_by_level[level] = (
                self.collapses_by_level.get(level, 0) + count
            )
        self.outputs += other.outputs
        self.elements += other.elements
        self.last_bound = max(self.last_bound, other.last_bound)


def stats_for(fw: Any) -> SketchObsStats:
    """Get-or-create the per-sketch stats attached to *fw*."""
    stats = getattr(fw, "_obs_stats", None)
    if stats is None:
        stats = SketchObsStats()
        fw._obs_stats = stats
    return stats


def collected_stats(sketch: Any) -> Optional[SketchObsStats]:
    """Aggregate stats for any sketch-like object, or ``None`` if unobserved.

    Frameworks carry their stats directly.  The adaptive multi-stage
    sketch keeps rolled-stage totals on itself (merged at stage roll, see
    ``AdaptiveQuantileSketch._roll_stage``) plus the live stage's own
    stats; this merges the two into one read-only view.
    """
    own = getattr(sketch, "_obs_stats", None)
    active = getattr(sketch, "_active", None)
    if active is None:
        return own
    active_stats = getattr(active, "_obs_stats", None)
    if own is None and active_stats is None:
        return None
    out = SketchObsStats()
    if own is not None:
        out.merge(own)
    if active_stats is not None:
        out.merge(active_stats)
    return out


# -- hook bodies (called only when the caller saw ENABLED=True) ---------------


def on_new(fw: Any, level: int) -> None:
    """A NEW placed one buffer at *level*."""
    stats = stats_for(fw)
    stats.new_by_level[level] = stats.new_by_level.get(level, 0) + 1
    hot = _handles()
    counter = hot.new_by_level.get(level)
    if counter is None:
        counter = hot.new_by_level[level] = hot.registry.counter(
            "core.new", level=level
        )
    counter.inc()
    hot.buffers_gauge.set(len(fw._full))


def on_collapse(
    fw: Any,
    group: Sequence[Any],
    result: Any,
    weight: int,
    offset: int,
) -> None:
    """A COLLAPSE merged *group* into *result*; emit counters + trace.

    The certified bound recorded here is Lemma 5 evaluated on the
    framework's state immediately after the collapse -- which is also
    the bound for any answer issued before the *next* collapse, because
    NEW neither changes ``W``/``C`` nor the heaviest buffer.
    """
    level = result.level
    stats = stats_for(fw)
    stats.collapses_by_level[level] = (
        stats.collapses_by_level.get(level, 0) + 1
    )
    w_max = max((buf.weight for buf in fw._full), default=1)
    bound = (
        fw._sum_collapse_weights - fw._n_collapses - 1
    ) / 2.0 + w_max
    stats.last_bound = bound
    hot = _handles()
    counter = hot.collapse_by_level.get(level)
    if counter is None:
        counter = hot.collapse_by_level[level] = hot.registry.counter(
            "core.collapse", level=level
        )
    counter.inc()
    hot.buffers_gauge.set(len(fw._full))
    from .trace import TraceEvent

    tracer().emit(
        TraceEvent(
            kind="collapse",
            sketch_id=id(fw),
            level=level,
            n=fw._n,
            n_collapses=fw._n_collapses,
            sum_collapse_weights=fw._sum_collapse_weights,
            w_max=w_max,
            bound=bound,
            weights=tuple(buf.weight for buf in group),
            out_weight=weight,
            offset=offset,
        )
    )


def on_output(fw: Any, n_phis: int) -> None:
    """An OUTPUT answered *n_phis* quantile fractions."""
    stats = stats_for(fw)
    stats.outputs += 1
    _handles().output.inc()


def on_ingest(fw: Any, count: int, nbytes: int) -> None:
    """One ingest chunk of *count* elements entered the framework."""
    stats = stats_for(fw)
    stats.elements += count
    hot = _handles()
    hot.elements_ingested.inc(count)
    hot.bytes_ingested.inc(nbytes)


def on_bank_extend(bank: Any, n_elements: int, n_runs: int) -> None:
    """A bank routed one chunk of *n_elements* over *n_runs* runs."""
    hot = _handles()
    hot.bank_chunks.inc()
    hot.bank_elements.inc(n_elements)
    hot.bank_runs.inc(n_runs)


def on_kernel(name: str, path: str) -> None:
    """A kernel entry point chose execution *path* (strategy counters)."""
    registry().counter(f"kernels.{name}", path=path).inc()


def on_engine_event(engine: str, event: str, count: int = 1) -> None:
    """A sketch engine performed *count* internal operations of kind *event*.

    Engine-labelled counters for the pluggable engines: KLL compactions
    (``engine.compactions{engine="kll"}``), Frugal step adjustments
    (``engine.step_adjustments{engine="frugal"}``), ...  Call sites sit
    at chunk/compaction granularity behind the usual ``ENABLED`` gate,
    so the disabled cost stays one attribute read + branch per chunk.
    """
    if not count:
        return
    hot = _handles()
    key = (engine, event)
    counter = hot.engine_events.get(key)
    if counter is None:
        counter = hot.engine_events[key] = hot.registry.counter(
            f"engine.{event}", engine=engine
        )
    counter.inc(count)
