"""Structured trace events for the collapse lifecycle.

Every COLLAPSE a live framework performs can be captured as one
:class:`TraceEvent` carrying the operation's inputs (level, input
weights, output weight, offset) and the summary's certified-accuracy
state *at that moment*: ``W`` (sum of collapse output weights), ``C``
(collapse count), ``w_max`` (heaviest surviving buffer) and the Lemma 5
bound ``(W - C - 1)/2 + w_max``.  Because NEW operations change none of
those quantities, the bound on the most recent event **is** the bound
:meth:`~repro.core.framework.QuantileFramework.error_bound` certifies
for any answer issued before the next collapse -- a live sketch answers
``observed_state -> current epsilon*N`` by reading its last trace event
(the property suite asserts bit-equality).

Events fan out to any number of sinks.  Two are provided:

:class:`TraceRing`
    a bounded in-memory ring buffer (the "flight recorder" view --
    cheap, always safe to enable);

:class:`JsonLinesSink`
    one JSON object per line to a file or file-like object, for offline
    analysis of collapse-tree growth.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import IO, Any, Deque, List, Optional, Tuple, Union

__all__ = [
    "TraceEvent",
    "TraceRing",
    "JsonLinesSink",
    "Tracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One observed framework operation plus the certified-bound state."""

    kind: str  #: "collapse" | "new" | "output"
    sketch_id: int  #: id() of the framework (correlates events per sketch)
    level: int  #: buffer level the operation acted on / produced
    n: int  #: genuine elements ingested so far
    n_collapses: int  #: C after the operation
    sum_collapse_weights: int  #: W after the operation
    w_max: int  #: heaviest surviving buffer after the operation
    bound: float  #: Lemma 5 certified rank bound, in elements
    weights: Tuple[int, ...] = ()  #: input buffer weights (collapse only)
    out_weight: int = 0  #: collapse output weight (0 otherwise)
    offset: int = 0  #: collapse offset (0 otherwise)
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


class TraceRing:
    """Bounded in-memory event buffer (newest ``capacity`` events kept)."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.n_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.n_emitted += 1

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonLinesSink:
    """Append trace events as JSON lines to a path or file-like object."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fp: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fp = target
            self._owns = False

    def emit(self, event: TraceEvent) -> None:
        self._fp.write(event.to_json())
        self._fp.write("\n")

    def flush(self) -> None:
        self._fp.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fp.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Tracer:
    """Fan-out of trace events to a ring buffer plus optional extra sinks.

    The ring is always present (it is the live ``observed_state ->
    current epsilon*N`` answer surface); JSON-lines or custom sinks are
    attached with :meth:`add_sink`.  A sink is anything with an
    ``emit(event)`` method.
    """

    def __init__(self, ring_capacity: int = 1024) -> None:
        self.ring = TraceRing(ring_capacity)
        self._sinks: List[Any] = []

    def add_sink(self, sink: Any) -> Any:
        if not hasattr(sink, "emit"):
            raise TypeError(
                f"trace sinks need an emit(event) method, got {type(sink)!r}"
            )
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self._sinks.remove(sink)

    def emit(self, event: TraceEvent) -> None:
        self.ring.emit(event)
        for sink in self._sinks:
            sink.emit(event)

    def current_bound(self) -> Optional[float]:
        """The running certified bound: the last collapse event's bound.

        ``None`` before the first collapse has been observed (a summary
        with no collapses answers exactly: its bound is 0.0).
        """
        event = self.ring.last("collapse")
        return None if event is None else event.bound
