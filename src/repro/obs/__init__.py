"""Observability for the MRL quantile framework.

A zero-dependency instrumentation subsystem threaded through the core
framework, the sharded service, the parallel engine, and the CLI:

- :mod:`repro.obs.metrics` -- counters, gauges, and latency histograms
  tracked with the library's **own** quantile sketch (dogfooding);
- :mod:`repro.obs.trace` -- structured COLLAPSE trace events carrying
  the running Lemma 5 certified bound, with a ring buffer and a
  JSON-lines sink;
- :mod:`repro.obs.hooks` -- the module-level gate the hot paths consult
  (one attribute read per buffer-level operation when disabled);
- :mod:`repro.obs.exposition` -- Prometheus text format and the
  ``repro stats --watch`` terminal view.

Quick start::

    import repro
    from repro import obs

    reg = obs.enable()
    sk = repro.Sketch(eps=0.01)
    sk.extend(range(1_000_000))
    print(obs.render_prometheus(reg))
    print(obs.tracer().current_bound())   # live certified rank bound

Instrumentation is **off** by default; see :mod:`repro.obs.hooks` for
the overhead contract (disabled-mode cost is gated at <2% of ingest in
the benchmark suite).
"""

from .hooks import (
    SketchObsStats,
    collected_stats,
    disable,
    enable,
    is_enabled,
    registry,
    reset,
    stats_for,
    tracer,
)
from .exposition import render_prometheus, render_stats_text
from .metrics import Counter, Gauge, MetricsRegistry, TimingSketch
from .trace import JsonLinesSink, TraceEvent, TraceRing, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "TimingSketch",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRing",
    "JsonLinesSink",
    "Tracer",
    "SketchObsStats",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "tracer",
    "reset",
    "stats_for",
    "collected_stats",
    "render_prometheus",
    "render_stats_text",
]
