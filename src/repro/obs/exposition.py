"""Rendering collected metrics for humans and scrapers.

Two output formats:

:func:`render_prometheus`
    the Prometheus text exposition format (version 0.0.4) from a
    :class:`~repro.obs.metrics.MetricsRegistry`.  Counter/gauge
    instruments become one sample each; timing sketches expand into
    ``_p50``/``_p90``/``_p99``/``_count`` samples plus the certified
    rank bound the sketch carries about its own percentiles.

:func:`render_stats_text`
    a fixed-width terminal view of a service ``STATS`` response dict,
    consumed by ``repro stats [--watch]``.  It shows the per-shard
    ingest/collapse table, per-metric certified epsilon*N, and the
    self-metered per-op latency percentiles.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "render_prometheus",
    "render_stats_text",
]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    return _NAME_SANITIZE.sub("_", f"{prefix}{name}")


def _prom_labels(labels: Iterable[Tuple[str, Any]]) -> str:
    pairs = [
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels
    ]
    return "{%s}" % ",".join(pairs) if pairs else ""


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: Any, prefix: str = "repro_") -> str:
    """Render a metrics registry in Prometheus text format.

    Instrument names have dots replaced by underscores and *prefix*
    prepended; labels are carried through.  Timing sketches emit one
    sample per tracked percentile (with a ``quantile`` label, summary
    style) plus ``_count`` and ``_bound_fraction``.
    """
    lines: List[str] = []
    seen_types: set = set()
    for name, labels, inst in registry:
        kind = inst.kind
        if kind in ("counter", "gauge"):
            pname = _prom_name(name, prefix)
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} {kind}")
            lines.append(f"{pname}{_prom_labels(labels)} {_prom_value(inst.get())}")
        elif kind == "timing":
            pname = _prom_name(name + "_ms", prefix)
            pcts = inst.percentiles()
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} summary")
            if pcts is None:
                lines.append(f"{pname}_count{_prom_labels(labels)} 0")
                continue
            base = list(labels)
            for key, value in pcts.items():
                if key.startswith("p"):
                    phi = int(key[1:]) / 100.0
                    lines.append(
                        "%s%s %s"
                        % (
                            pname,
                            _prom_labels(base + [("quantile", phi)]),
                            _prom_value(value),
                        )
                    )
            lines.append(
                f"{pname}_count{_prom_labels(labels)} {int(pcts['n'])}"
            )
            lines.append(
                "%s_bound_fraction%s %s"
                % (
                    pname,
                    _prom_labels(labels),
                    _prom_value(pcts["certified_rank_bound_fraction"]),
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- terminal STATS view ------------------------------------------------------


def _fmt_count(value: Any) -> str:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return str(value)
    if v >= 1e9:
        return f"{v / 1e9:.2f}G"
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e4:
        return f"{v / 1e3:.1f}k"
    if v == int(v):
        return str(int(v))
    return f"{v:.2f}"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return out


def _fmt_latency(pcts: Optional[Mapping[str, Any]]) -> str:
    if not pcts:
        return "-"
    parts = []
    for key in ("p50", "p90", "p95", "p99"):
        if key in pcts:
            parts.append(f"{key}={pcts[key]:.3g}ms")
    if "n" in pcts:
        parts.append(f"n={_fmt_count(pcts['n'])}")
    return " ".join(parts) if parts else "-"


def _fmt_levels(by_level: Optional[Mapping[str, Any]]) -> str:
    if not by_level:
        return "-"
    items = sorted(by_level.items(), key=lambda kv: int(kv[0]))
    return " ".join(f"L{lvl}:{cnt}" for lvl, cnt in items)


def render_stats_text(stats: Mapping[str, Any]) -> str:
    """Format a service ``STATS`` response dict for the terminal."""
    lines: List[str] = []
    uptime = stats.get("uptime_s")
    header = "repro service stats"
    if uptime is not None:
        header += f" · uptime {float(uptime):.1f}s"
    ingest = stats.get("ingest", {})
    if ingest:
        header += (
            f" · {_fmt_count(ingest.get('elements', 0))} elements"
            f" · {_fmt_count(ingest.get('rate_per_s_recent', 0))}/s recent"
        )
    lines.append(header)
    lines.append("")

    shards = stats.get("shards") or []
    if shards:
        rows = []
        for shard in shards:
            rows.append(
                [
                    str(shard.get("shard", "?")),
                    str(shard.get("metrics", 0)),
                    _fmt_count(shard.get("elements_applied", 0)),
                    _fmt_count(shard.get("batches_applied", 0)),
                    str(shard.get("pending_batches", 0)),
                    _fmt_levels(shard.get("collapses_by_level"))
                    if shard.get("collapses_by_level")
                    else _fmt_count(shard.get("collapse_count", 0)),
                    _fmt_count(shard.get("memory_elements", 0)),
                ]
            )
        lines.append("shards")
        lines.extend(
            _table(
                ["shard", "metrics", "elements", "batches", "pend", "collapses", "mem"],
                rows,
            )
        )
        lines.append("")

    obs = stats.get("obs") or {}
    metrics_detail = obs.get("metrics") or []
    if metrics_detail:
        rows = []
        for m in metrics_detail:
            bound = m.get("certified_bound")
            n = m.get("n", 0)
            eps_n = "-" if bound is None else _fmt_count(bound)
            eps = (
                "-"
                if bound is None or not n
                else f"{float(bound) / float(n):.2e}"
            )
            rows.append(
                [
                    str(m.get("name", "?")),
                    str(m.get("shard", "?")),
                    _fmt_count(n),
                    _fmt_levels(m.get("collapses_by_level")),
                    eps_n,
                    eps,
                ]
            )
        lines.append("metrics (certified a-posteriori bounds)")
        lines.extend(
            _table(
                ["name", "shard", "n", "collapses", "cert. εN", "cert. ε"],
                rows,
            )
        )
        lines.append("")

    op_latency = obs.get("op_latency_ms") or {}
    if op_latency:
        rows = [
            [op, _fmt_latency(pcts)]
            for op, pcts in sorted(op_latency.items())
        ]
        lines.append("op latency (self-metered, ms)")
        lines.extend(_table(["op", "percentiles"], rows))
        lines.append("")

    queries = stats.get("queries", {})
    if queries:
        lines.append(
            "queries: total=%s latency[%s]"
            % (
                _fmt_count(queries.get("count", 0)),
                _fmt_latency(queries.get("latency_ms")),
            )
        )

    engines = stats.get("engines") or {}
    if engines:
        parts = [f"{k}={_fmt_count(v)}" for k, v in sorted(engines.items())]
        lines.append("engines: " + " ".join(parts))

    counters = obs.get("counters") or {}
    if counters:
        parts = [f"{k}={_fmt_count(v)}" for k, v in sorted(counters.items())]
        lines.append("obs counters: " + " ".join(parts))

    return "\n".join(lines).rstrip() + "\n"
