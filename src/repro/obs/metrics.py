"""Self-metered metrics primitives: counters, gauges, timing sketches.

Zero external dependencies.  Three instrument kinds cover everything the
instrumented layers need:

:class:`Counter`
    a monotonically increasing integer (NEW/COLLAPSE/OUTPUT counts,
    elements ingested, kernel strategy selections);

:class:`Gauge`
    a settable float (buffers in use, bytes resident);

:class:`TimingSketch`
    a latency histogram tracked with the library's **own**
    :class:`~repro.core.adaptive.AdaptiveQuantileSketch` -- the same
    dogfooding pattern :mod:`repro.service.metrics` established for
    query latency: the instrumentation reports p50/p99 with the exact
    certified rank bound it exists to demonstrate.

Instruments live in a :class:`MetricsRegistry`, addressed by name plus
an optional label mapping (``registry.counter("core.collapse",
level=3)``).  Creation is get-or-create, so call sites never need to
declare instruments up front; a family (all instruments of one name) can
be summed across labels for exposition.

The registry itself does no gating: the cost of not observing is paid at
the *call sites*, which guard every hook behind one module-attribute
read (see :mod:`repro.obs.hooks`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "TimingSketch",
    "MetricsRegistry",
]

#: percentiles reported by :meth:`TimingSketch.percentiles`
_TIMING_PHIS = (0.5, 0.9, 0.99)

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def get(self) -> int:
        return self.value


class Gauge:
    """A point-in-time float value (last write wins)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def get(self) -> float:
        return self.value


class _Timer:
    """Context manager feeding one wall-clock duration into a sketch."""

    __slots__ = ("_sketch", "_start")

    def __init__(self, sketch: "TimingSketch") -> None:
        self._sketch = sketch
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._sketch.observe(time.perf_counter() - self._start)


class TimingSketch:
    """A duration histogram backed by the library's own quantile sketch.

    Durations are recorded in **milliseconds**.  The inner
    :class:`~repro.core.adaptive.AdaptiveQuantileSketch` is created
    lazily on the first observation (which also keeps this module free
    of import cycles with :mod:`repro.core`).
    """

    __slots__ = ("epsilon", "_sketch")

    kind = "timing"

    def __init__(self, epsilon: float = 0.01) -> None:
        self.epsilon = epsilon
        self._sketch: Any = None

    @property
    def n(self) -> int:
        return 0 if self._sketch is None else self._sketch.n

    def observe(self, seconds: float) -> None:
        """Record one duration (given in seconds, stored as ms)."""
        if self._sketch is None:
            from ..core.adaptive import AdaptiveQuantileSketch

            self._sketch = AdaptiveQuantileSketch(epsilon=self.epsilon)
        self._sketch.update(seconds * 1000.0)

    def extend_ms(self, durations_ms: Any) -> None:
        """Record a batch of durations already in **milliseconds**.

        The vectorised path for callers that buffer observations (the
        service meters every request; one sketch insert per request was
        measurable) -- one batched sketch extend amortises the per-value
        cost, and batched ingest is bit-identical to one-at-a-time.
        """
        if self._sketch is None:
            from ..core.adaptive import AdaptiveQuantileSketch

            self._sketch = AdaptiveQuantileSketch(epsilon=self.epsilon)
        self._sketch.extend(durations_ms)

    def time(self) -> _Timer:
        """``with timing.time(): ...`` records the block's duration."""
        return _Timer(self)

    def percentiles(self) -> Optional[Dict[str, float]]:
        """p50/p90/p99 in ms plus the certified rank bound, or ``None``."""
        if self._sketch is None or self._sketch.n == 0:
            return None
        values = self._sketch.quantiles(list(_TIMING_PHIS))
        out = {
            f"p{int(phi * 100)}": round(float(v), 4)
            for phi, v in zip(_TIMING_PHIS, values)
        }
        out["n"] = self._sketch.n
        out["certified_rank_bound_fraction"] = round(
            self._sketch.error_bound_fraction(), 6
        )
        return out

    def get(self) -> Optional[Dict[str, float]]:
        return self.percentiles()


class MetricsRegistry:
    """Named, labelled instruments with get-or-create access.

    The registry is a flat map ``(name, sorted-labels) -> instrument``.
    Within one name every instrument must share a kind; mixing kinds
    under one name raises ``ValueError`` (it would make family rollups
    meaningless).
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}

    # -- access ------------------------------------------------------------

    def _get_or_create(
        self, name: str, labels: Dict[str, Any], factory: Any, kind: str
    ) -> Any:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            seen = self._kinds.get(name)
            if seen is not None and seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen}, "
                    f"requested {kind}"
                )
            inst = factory()
            self._instruments[key] = inst
            self._kinds[name] = kind
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, labels, Gauge, "gauge")

    def timing(self, name: str, **labels: Any) -> TimingSketch:
        return self._get_or_create(name, labels, TimingSketch, "timing")

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Tuple[str, LabelKey, Any]]:
        for (name, labels), inst in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            yield name, labels, inst

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._instruments})

    def kind_of(self, name: str) -> Optional[str]:
        """The instrument kind registered under *name* (None if absent)."""
        return self._kinds.get(name)

    def value(self, name: str, **labels: Any) -> Any:
        """The current value of one instrument (0/None if absent)."""
        inst = self._instruments.get((name, _label_key(labels)))
        if inst is None:
            return 0 if self._kinds.get(name) != "timing" else None
        return inst.get()

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label combinations."""
        return sum(
            inst.value
            for (n, _), inst in self._instruments.items()
            if n == name and not isinstance(inst, TimingSketch)
        )

    def family(self, name: str) -> Dict[LabelKey, Any]:
        """All instruments of one name, keyed by their label tuples."""
        return {
            labels: inst
            for (n, labels), inst in self._instruments.items()
            if n == name
        }

    def snapshot(self) -> List[Dict[str, Any]]:
        """A JSON-able dump of every instrument (sorted, stable order)."""
        rows: List[Dict[str, Any]] = []
        for name, labels, inst in self:
            rows.append(
                {
                    "name": name,
                    "kind": inst.kind,
                    "labels": dict(labels),
                    "value": inst.get(),
                }
            )
        return rows

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        self._instruments.clear()
        self._kinds.clear()
