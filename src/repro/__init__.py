"""repro: a full reproduction of Manku, Rajagopalan & Lindsay (SIGMOD 1998),
"Approximate Medians and other Quantiles in One Pass and with Limited Memory".

Public facade
-------------

Four names cover the common cases, with one consistent spelling
(``eps=``, ``policy=``, ``kernels=``) everywhere::

    import repro

    sk = repro.Sketch(eps=0.01)              # unknown-N adaptive sketch
    sk = repro.Sketch(eps=0.01, n=10**6)     # fixed-N, Table 1 sizing
    bank = repro.Bank(eps=0.01, n_sketches=8)  # many summaries, one scan
    client = repro.connect("localhost")      # the sharded service
    edges = repro.hist(values, bins=10)      # equi-depth boundaries

    win = repro.Sketch(eps=0.01, window="5m", slide="1m")  # last 5 min
    dec = repro.Sketch(eps=0.01, decay="1h")   # exponential half-life
    cc = repro.connect(cluster="./cluster")    # multi-node routing

Every sketch-like object answers the same query quartet --
``quantile(phi)``, ``quantiles(phis)``, ``cdf(values)``, ``describe()``
-- formalised as :class:`repro.core.SketchProtocol`.

Instrumentation lives in :mod:`repro.obs` (``repro.obs.enable()``,
Prometheus exposition, per-COLLAPSE trace events carrying the live
certified error bound).

Package layout
--------------

* :mod:`repro.core` -- the paper's contribution: the uniform b/k-buffer
  framework, the three collapse policies, optimal parameter selection,
  the sampling front-end and the parallel mode;
* :mod:`repro.windows` -- time-aware wrappers: sliding/tumbling
  :class:`~repro.windows.WindowedSketch` and exponential-decay
  :class:`~repro.windows.ExpDecaySketch` over any engine;
* :mod:`repro.obs` -- zero-dependency observability (metrics, traces,
  exposition);
* :mod:`repro.service` -- the sharded, durable quantile-sketch server;
* :mod:`repro.streams` -- workload generators and disk-resident streams;
* :mod:`repro.baselines` -- prior one-pass algorithms plus exact ground
  truth;
* :mod:`repro.histogram` / :mod:`repro.partitioning` /
  :mod:`repro.engine` / :mod:`repro.analysis` -- applications and
  measurement.

The pre-facade import paths (``from repro import QuantileSketch``, ...)
keep working but emit one :class:`DeprecationWarning` per name; the
canonical homes are :mod:`repro.core` and the facade above.
"""

from __future__ import annotations

import warnings
from typing import Any

from . import obs
from .api import Bank, Sketch, connect, hist

__version__ = "1.1.0"

__all__ = [
    "Sketch",
    "Bank",
    "connect",
    "hist",
    "obs",
    "__version__",
]

#: legacy top-level name -> (canonical module, attribute, facade hint)
_LEGACY = {
    "QuantileSketch": ("repro.core", "QuantileSketch", "repro.Sketch(eps=...)"),
    "AdaptiveQuantileSketch": (
        "repro.core",
        "AdaptiveQuantileSketch",
        "repro.Sketch(eps=...)",
    ),
    "QuantileFramework": ("repro.core", "QuantileFramework", None),
    "ParallelQuantileEngine": ("repro.core", "ParallelQuantileEngine", None),
    "approximate_quantiles": ("repro.core", "approximate_quantiles", None),
    "optimal_parameters": ("repro.core", "optimal_parameters", None),
    "MultiColumnSketcher": (
        "repro.multicolumn",
        "MultiColumnSketcher",
        "repro.Bank(eps=...)",
    ),
    "exact_quantile_two_pass": (
        "repro.twopass",
        "exact_quantile_two_pass",
        None,
    ),
    "verify_guarantee": ("repro.validation", "verify_guarantee", None),
}

_warned: set = set()


def _reset_deprecation_warnings() -> None:
    """Forget which legacy names already warned (test isolation)."""
    _warned.clear()


def __getattr__(name: str) -> Any:
    entry = _LEGACY.get(name)
    if entry is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module_path, attr, hint = entry
    if name not in _warned:
        _warned.add(name)
        suggestion = f"import it from {module_path}"
        if hint:
            suggestion += f" or use the facade ({hint})"
        warnings.warn(
            f"'repro.{name}' is deprecated; {suggestion}",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_path), attr)


def __dir__() -> list:
    return sorted(set(__all__) | set(_LEGACY))
