"""repro: a full reproduction of Manku, Rajagopalan & Lindsay (SIGMOD 1998),
"Approximate Medians and other Quantiles in One Pass and with Limited Memory".

The package is organised as:

* :mod:`repro.core` -- the paper's contribution: the uniform b/k-buffer
  framework, the three collapse policies, optimal parameter selection,
  the sampling front-end and the parallel mode;
* :mod:`repro.streams` -- workload generators and disk-resident streams;
* :mod:`repro.baselines` -- prior one-pass algorithms (P^2, Agrawal-Swami,
  naive random sampling) plus exact ground truth;
* :mod:`repro.histogram` -- equi-depth histograms and selectivity
  estimation for query optimisation;
* :mod:`repro.partitioning` -- splitter generation and a simulated
  shared-nothing parallel sort;
* :mod:`repro.engine` -- a miniature column engine with one-pass GROUP BY
  quantile aggregates and a small SQL front-end;
* :mod:`repro.analysis` -- rank-error measurement and experiment
  table formatting.

Quick start::

    from repro import QuantileSketch
    sk = QuantileSketch(epsilon=0.01, n=1_000_000)
    sk.extend(my_numpy_chunk)
    print(sk.median(), sk.quantiles([0.25, 0.75]))
"""

from .core import (
    AdaptiveQuantileSketch,
    ParallelQuantileEngine,
    QuantileFramework,
    QuantileSketch,
    approximate_quantiles,
    optimal_parameters,
)

__version__ = "1.0.0"

from .multicolumn import MultiColumnSketcher
from .twopass import exact_quantile_two_pass
from .validation import verify_guarantee

__all__ = [
    "QuantileSketch",
    "AdaptiveQuantileSketch",
    "MultiColumnSketcher",
    "exact_quantile_two_pass",
    "verify_guarantee",
    "QuantileFramework",
    "ParallelQuantileEngine",
    "approximate_quantiles",
    "optimal_parameters",
    "__version__",
]
