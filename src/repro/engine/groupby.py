"""One-pass GROUP BY with quantile aggregates.

Section 1.2: *"It is important that algorithms ... compute results in a
single pass ... GROUP BY algorithms also compute multiple aggregation
results concurrently."*  Section 7 sketches the SQL surface
(``SELECT QUANTILE(0.35, col1), QUANTILE(0.50, col1) ...``) and warns that
the *"non-trivial memory requirements will probably require some tricky
extensions to the GROUP BY execution environment"*.

This module is that execution environment, miniature edition:

* an :class:`Aggregate` describes a column function (``QUANTILE``,
  ``MEDIAN``, ``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``);
* each group materialises one *accumulator* per aggregate -- quantile
  accumulators are :class:`~repro.core.sketch.QuantileSketch` instances
  sized for the table's row count (an upper bound on any group), so every
  group's answer carries the full ``epsilon`` guarantee;
* :func:`execute_group_by` drives a single chunked pass, routing each
  chunk's rows to their groups vectorised by key.

Because all quantiles of a group are read off one sketch (Section 4.7),
``QUANTILE(0.25, x), QUANTILE(0.5, x), QUANTILE(0.75, x)`` on the same
column share a single accumulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import QueryError
from ..core.sketch import QuantileSketch
from .table import Chunk

__all__ = [
    "Aggregate",
    "quantile",
    "median",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "var_",
    "stddev",
    "GroupByResult",
    "execute_group_by",
    "DEFAULT_EPSILON",
]

DEFAULT_EPSILON = 0.01


@dataclass(frozen=True)
class Aggregate:
    """Specification of one aggregate column in a query result.

    ``kind`` is one of ``quantile | count | sum | avg | min | max``;
    quantile aggregates carry ``phi`` and ``epsilon``.
    """

    kind: str
    column: Optional[str] = None  # None only for COUNT(*)
    phi: Optional[float] = None
    epsilon: float = DEFAULT_EPSILON
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (
            "quantile", "count", "sum", "avg", "min", "max", "var", "stddev"
        ):
            raise QueryError(f"unknown aggregate kind {self.kind!r}")
        if self.kind == "quantile":
            if self.column is None:
                raise QueryError("QUANTILE needs a column")
            if self.phi is None or not 0.0 <= self.phi <= 1.0:
                raise QueryError(
                    f"QUANTILE needs phi in [0, 1], got {self.phi}"
                )
            if not 0.0 < self.epsilon < 1.0:
                raise QueryError(
                    f"QUANTILE needs epsilon in (0, 1), got {self.epsilon}"
                )
        elif self.kind != "count" and self.column is None:
            raise QueryError(f"{self.kind.upper()} needs a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.kind == "count":
            return "count" if self.column is None else f"count_{self.column}"
        if self.kind == "quantile":
            return f"q{self.phi:g}_{self.column}"
        return f"{self.kind}_{self.column}"


def quantile(
    column: str,
    phi: float,
    epsilon: float = DEFAULT_EPSILON,
    *,
    alias: Optional[str] = None,
) -> Aggregate:
    """``QUANTILE(phi, column)`` with guarantee *epsilon*."""
    return Aggregate("quantile", column, phi=phi, epsilon=epsilon, alias=alias)


def median(
    column: str, epsilon: float = DEFAULT_EPSILON, *, alias: Optional[str] = None
) -> Aggregate:
    """``MEDIAN(column)`` -- sugar for ``QUANTILE(0.5, column)``."""
    return Aggregate("quantile", column, phi=0.5, epsilon=epsilon, alias=alias)


def count(*, alias: Optional[str] = None) -> Aggregate:
    """``COUNT(*)``."""
    return Aggregate("count", alias=alias)


def sum_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("sum", column, alias=alias)


def avg(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("avg", column, alias=alias)


def min_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("min", column, alias=alias)


def max_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("max", column, alias=alias)


def var_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    """Population variance of *column*."""
    return Aggregate("var", column, alias=alias)


def stddev(column: str, *, alias: Optional[str] = None) -> Aggregate:
    """Population standard deviation of *column*."""
    return Aggregate("stddev", column, alias=alias)


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


class _ScalarAccumulator:
    """COUNT/SUM/AVG/MIN/MAX/VAR/STDDEV in O(1) state.

    Variance uses the chunk-parallel Welford/Chan update so it stays
    numerically stable across any chunking of the input.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf
        self.mean = 0.0
        self.m2 = 0.0  # sum of squared deviations from the running mean

    def update(self, values: Optional[np.ndarray], n_rows: int) -> None:
        if values is None:
            self.count += n_rows  # COUNT(*): every row counts
            return
        values = values[~np.isnan(values)]  # SQL semantics: NULLs ignored
        self.count += len(values)
        if len(values):
            self.total += float(values.sum())
            self.low = min(self.low, float(values.min()))
            self.high = max(self.high, float(values.max()))
            # Chan et al. pairwise combination of (mean, M2) statistics
            n_b = len(values)
            mean_b = float(values.mean())
            m2_b = float(((values - mean_b) ** 2).sum())
            # rows accumulated before this chunk (count already bumped)
            n_a = self.count - n_b
            if n_a == 0:
                self.mean, self.m2 = mean_b, m2_b
            else:
                delta = mean_b - self.mean
                total_n = n_a + n_b
                self.m2 = self.m2 + m2_b + delta * delta * n_a * n_b / total_n
                self.mean = self.mean + delta * n_b / total_n

    def result(self) -> Any:
        if self.kind == "count":
            return self.count
        if self.count == 0:
            return None
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return self.total / self.count
        if self.kind == "min":
            return self.low
        if self.kind == "max":
            return self.high
        variance = self.m2 / self.count if self.count else 0.0
        if self.kind == "var":
            return variance
        return math.sqrt(max(variance, 0.0))


class _GroupState:
    """All accumulators for one group, with quantile-sketch sharing."""

    def __init__(
        self, aggregates: Sequence[Aggregate], n_hint: int
    ) -> None:
        self._aggregates = aggregates
        self._scalars: Dict[int, _ScalarAccumulator] = {}
        self._sketches: Dict[Tuple[str, float], QuantileSketch] = {}
        for i, agg in enumerate(aggregates):
            if agg.kind == "quantile":
                key = (agg.column, agg.epsilon)  # type: ignore[arg-type]
                if key not in self._sketches:
                    self._sketches[key] = QuantileSketch(
                        agg.epsilon, n=max(n_hint, 1)
                    )
            else:
                self._scalars[i] = _ScalarAccumulator(agg.kind)

    def update(self, chunk: Chunk) -> None:
        touched: Dict[Tuple[str, float], bool] = {}
        for i, agg in enumerate(self._aggregates):
            if agg.kind == "quantile":
                key = (agg.column, agg.epsilon)  # type: ignore[arg-type]
                if not touched.get(key):
                    values = np.asarray(chunk[agg.column], dtype=np.float64)
                    values = values[~np.isnan(values)]  # NULLs ignored
                    if len(values):
                        self._sketches[key].extend(values)
                    touched[key] = True
            else:
                values = None
                if agg.column is not None:
                    values = np.asarray(chunk[agg.column], dtype=np.float64)
                self._scalars[i].update(values, chunk.n_rows)

    def results(self) -> List[Any]:
        out: List[Any] = []
        for i, agg in enumerate(self._aggregates):
            if agg.kind == "quantile":
                key = (agg.column, agg.epsilon)  # type: ignore[arg-type]
                sketch = self._sketches[key]
                out.append(
                    float(sketch.query(agg.phi)) if len(sketch) else None
                )
            else:
                out.append(self._scalars[i].result())
        return out

    @property
    def memory_elements(self) -> int:
        return sum(s.memory_elements for s in self._sketches.values())


@dataclass
class GroupByResult:
    """Rows of a grouped aggregation, plus execution statistics."""

    group_columns: List[str]
    aggregate_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    n_rows_scanned: int = 0
    sketch_memory_elements: int = 0

    def column(self, name: str) -> List[Any]:
        if self.rows and name not in self.rows[0]:
            raise QueryError(f"result has no column {name!r}")
        return [row[name] for row in self.rows]

    def sorted_rows(self) -> List[Dict[str, Any]]:
        """Rows ordered by group key (results are grouped, not ordered)."""
        return sorted(
            self.rows,
            key=lambda r: tuple(r[c] for c in self.group_columns),
        )

    def __len__(self) -> int:
        return len(self.rows)


def _chunk_group_keys(chunk: Chunk, group_by: Sequence[str]) -> List[Any]:
    """Per-row group keys for one chunk (tuples for composite keys)."""
    if len(group_by) == 1:
        values = chunk[group_by[0]]
        if isinstance(values, np.ndarray):
            return [v.item() for v in values]
        return list(values)
    columns = []
    for name in group_by:
        values = chunk[name]
        if isinstance(values, np.ndarray):
            columns.append([v.item() for v in values])
        else:
            columns.append(list(values))
    return list(zip(*columns))


def execute_group_by(
    chunks: Iterable[Chunk],
    group_by: Sequence[str],
    aggregates: Sequence[Aggregate],
    *,
    n_hint: int = 2**24,
) -> GroupByResult:
    """One pass over *chunks*, grouping by *group_by*, computing *aggregates*.

    ``n_hint`` sizes the per-group quantile sketches (the table's row
    count is the natural choice: no group can exceed it, so every group's
    guarantee holds a fortiori).  With an empty *group_by* the whole input
    forms a single group (plain aggregation).
    """
    if not aggregates:
        raise QueryError("need at least one aggregate")
    groups: Dict[Any, _GroupState] = {}
    result = GroupByResult(
        group_columns=list(group_by),
        aggregate_names=[a.output_name for a in aggregates],
    )
    for chunk in chunks:
        result.n_rows_scanned += chunk.n_rows
        if chunk.n_rows == 0:
            continue
        if not group_by:
            state = groups.setdefault(
                (), _GroupState(aggregates, n_hint)
            )
            state.update(chunk)
            continue
        keys = _chunk_group_keys(chunk, group_by)
        # bucket row indices by key, then feed each group one sub-chunk
        buckets: Dict[Any, List[int]] = {}
        for i, key in enumerate(keys):
            buckets.setdefault(key, []).append(i)
        for key, idx in buckets.items():
            state = groups.get(key)
            if state is None:
                state = groups[key] = _GroupState(aggregates, n_hint)
            mask = np.zeros(chunk.n_rows, dtype=bool)
            mask[idx] = True
            state.update(chunk.take(mask))
    for key, state in groups.items():
        row: Dict[str, Any] = {}
        if group_by:
            key_values = key if isinstance(key, tuple) else (key,)
            for name, value in zip(group_by, key_values):
                row[name] = value
        for name, value in zip(result.aggregate_names, state.results()):
            row[name] = value
        result.rows.append(row)
        result.sketch_memory_elements += state.memory_elements
    return result
