"""One-pass GROUP BY with quantile aggregates.

Section 1.2: *"It is important that algorithms ... compute results in a
single pass ... GROUP BY algorithms also compute multiple aggregation
results concurrently."*  Section 7 sketches the SQL surface
(``SELECT QUANTILE(0.35, col1), QUANTILE(0.50, col1) ...``) and warns that
the *"non-trivial memory requirements will probably require some tricky
extensions to the GROUP BY execution environment"*.

This module is that execution environment, miniature edition:

* an :class:`Aggregate` describes a column function (``QUANTILE``,
  ``MEDIAN``, ``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``);
* all groups' quantile accumulators for one ``(column, epsilon)`` pair
  live in a single :class:`~repro.core.bank.SketchBank` -- one MRL
  summary per group, sized for the table's row count (an upper bound on
  any group), so every group's answer carries the full ``epsilon``
  guarantee;
* :func:`execute_group_by` drives a single chunked pass.  Each chunk's
  rows are key-encoded to dense group ids with ``np.unique`` (no per-row
  Python), partitioned into per-group runs by one stable ``np.argsort``,
  and the runs are fed to the banks and scalar accumulators --
  bit-identical to feeding every group's sketch its rows one group at a
  time, at a fraction of the cost.

Because all quantiles of a group are read off one sketch (Section 4.7),
``QUANTILE(0.25, x), QUANTILE(0.5, x), QUANTILE(0.75, x)`` on the same
column share a single accumulator; the certified Lemma 5 rank-error bound
of every group's sketch is reported on the result
(:attr:`GroupByResult.quantile_error_bounds`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bank import SketchBank
from ..core.errors import QueryError
from .table import Chunk

__all__ = [
    "Aggregate",
    "quantile",
    "median",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "var_",
    "stddev",
    "GroupByResult",
    "execute_group_by",
    "DEFAULT_EPSILON",
]

DEFAULT_EPSILON = 0.01


@dataclass(frozen=True)
class Aggregate:
    """Specification of one aggregate column in a query result.

    ``kind`` is one of ``quantile | count | sum | avg | min | max``;
    quantile aggregates carry ``phi`` and ``epsilon``.
    """

    kind: str
    column: Optional[str] = None  # None only for COUNT(*)
    phi: Optional[float] = None
    epsilon: float = DEFAULT_EPSILON
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (
            "quantile", "count", "sum", "avg", "min", "max", "var", "stddev"
        ):
            raise QueryError(f"unknown aggregate kind {self.kind!r}")
        if self.kind == "quantile":
            if self.column is None:
                raise QueryError("QUANTILE needs a column")
            if self.phi is None or not 0.0 <= self.phi <= 1.0:
                raise QueryError(
                    f"QUANTILE needs phi in [0, 1], got {self.phi}"
                )
            if not 0.0 < self.epsilon < 1.0:
                raise QueryError(
                    f"QUANTILE needs epsilon in (0, 1), got {self.epsilon}"
                )
        elif self.kind != "count" and self.column is None:
            raise QueryError(f"{self.kind.upper()} needs a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.kind == "count":
            return "count" if self.column is None else f"count_{self.column}"
        if self.kind == "quantile":
            return f"q{self.phi:g}_{self.column}"
        return f"{self.kind}_{self.column}"


def quantile(
    column: str,
    phi: float,
    epsilon: float = DEFAULT_EPSILON,
    *,
    alias: Optional[str] = None,
) -> Aggregate:
    """``QUANTILE(phi, column)`` with guarantee *epsilon*."""
    return Aggregate("quantile", column, phi=phi, epsilon=epsilon, alias=alias)


def median(
    column: str, epsilon: float = DEFAULT_EPSILON, *, alias: Optional[str] = None
) -> Aggregate:
    """``MEDIAN(column)`` -- sugar for ``QUANTILE(0.5, column)``."""
    return Aggregate("quantile", column, phi=0.5, epsilon=epsilon, alias=alias)


def count(*, alias: Optional[str] = None) -> Aggregate:
    """``COUNT(*)``."""
    return Aggregate("count", alias=alias)


def sum_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("sum", column, alias=alias)


def avg(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("avg", column, alias=alias)


def min_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("min", column, alias=alias)


def max_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    return Aggregate("max", column, alias=alias)


def var_(column: str, *, alias: Optional[str] = None) -> Aggregate:
    """Population variance of *column*."""
    return Aggregate("var", column, alias=alias)


def stddev(column: str, *, alias: Optional[str] = None) -> Aggregate:
    """Population standard deviation of *column*."""
    return Aggregate("stddev", column, alias=alias)


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


class _ScalarAccumulator:
    """COUNT/SUM/AVG/MIN/MAX/VAR/STDDEV in O(1) state.

    Variance uses the chunk-parallel Welford/Chan update so it stays
    numerically stable across any chunking of the input.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf
        self.mean = 0.0
        self.m2 = 0.0  # sum of squared deviations from the running mean

    def update(self, values: Optional[np.ndarray], n_rows: int) -> None:
        if values is None:
            self.count += n_rows  # COUNT(*): every row counts
            return
        values = values[~np.isnan(values)]  # SQL semantics: NULLs ignored
        self.count += len(values)
        if len(values):
            self.total += float(values.sum())
            self.low = min(self.low, float(values.min()))
            self.high = max(self.high, float(values.max()))
            # Chan et al. pairwise combination of (mean, M2) statistics
            n_b = len(values)
            mean_b = float(values.mean())
            m2_b = float(((values - mean_b) ** 2).sum())
            # rows accumulated before this chunk (count already bumped)
            n_a = self.count - n_b
            if n_a == 0:
                self.mean, self.m2 = mean_b, m2_b
            else:
                delta = mean_b - self.mean
                total_n = n_a + n_b
                self.m2 = self.m2 + m2_b + delta * delta * n_a * n_b / total_n
                self.mean = self.mean + delta * n_b / total_n

    def result(self) -> Any:
        if self.kind == "count":
            return self.count
        if self.count == 0:
            return None
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return self.total / self.count
        if self.kind == "min":
            return self.low
        if self.kind == "max":
            return self.high
        variance = self.m2 / self.count if self.count else 0.0
        if self.kind == "var":
            return variance
        return math.sqrt(max(variance, 0.0))


class _AggregatorSet:
    """Accumulators for *all* groups, fed pre-partitioned chunk runs.

    Quantile aggregates sharing a ``(column, epsilon)`` pair share one
    :class:`SketchBank` with sketch id = group id; scalar aggregates keep
    one :class:`_ScalarAccumulator` per group in a flat list.  Groups are
    created lazily (:meth:`add_group`) the moment their key first appears
    in the stream.
    """

    def __init__(
        self, aggregates: Sequence[Aggregate], n_hint: int
    ) -> None:
        self._aggregates = list(aggregates)
        self._banks: Dict[Tuple[str, float], SketchBank] = {}
        self._bank_of: Dict[int, Tuple[str, float]] = {}
        self._scalars: Dict[int, List[_ScalarAccumulator]] = {}
        for i, agg in enumerate(self._aggregates):
            if agg.kind == "quantile":
                key = (agg.column, agg.epsilon)  # type: ignore[assignment]
                if key not in self._banks:
                    self._banks[key] = SketchBank(
                        agg.epsilon, n=max(n_hint, 1)
                    )
                self._bank_of[i] = key
            else:
                self._scalars[i] = []
        self.n_groups = 0

    def add_group(self) -> int:
        """Materialise accumulators for a newly seen group key."""
        gid = self.n_groups
        self.n_groups += 1
        for i, accs in self._scalars.items():
            accs.append(_ScalarAccumulator(self._aggregates[i].kind))
        for bank in self._banks.values():
            bank.add_sketch()
        return gid

    def update(
        self,
        chunk: Chunk,
        order: Optional[np.ndarray],
        run_gids: Sequence[int],
        starts: Sequence[int],
        stops: Sequence[int],
    ) -> None:
        """Feed one chunk, already partitioned into per-group runs.

        Run ``j`` comprises rows ``order[starts[j]:stops[j]]`` (or the
        plain row range when *order* is ``None``, the single-run case),
        all belonging to group ``run_gids[j]``; runs must cover the chunk
        and preserve row order within each group, which keeps every
        sketch's buffer contents identical to the per-group masking path.
        """
        run_list = [int(g) for g in run_gids]
        start_list = [int(s) for s in starts]
        stop_list = [int(e) for e in stops]
        column_cache: Dict[str, np.ndarray] = {}

        def partitioned_column(name: str) -> np.ndarray:
            arr = column_cache.get(name)
            if arr is None:
                arr = np.asarray(chunk[name], dtype=np.float64)
                if order is not None:
                    arr = arr[order]
                column_cache[name] = arr
            return arr

        for i, accs in self._scalars.items():
            agg = self._aggregates[i]
            if agg.column is None:
                for g, s, e in zip(run_list, start_list, stop_list):
                    accs[g].update(None, e - s)
            else:
                col = partitioned_column(agg.column)
                for g, s, e in zip(run_list, start_list, stop_list):
                    accs[g].update(col[s:e], e - s)
        for (column, _eps), bank in self._banks.items():
            col = partitioned_column(column)
            nan_mask = np.isnan(col)
            if nan_mask.any():
                # NULLs ignored: drop NaN rows and recount the runs
                keep = ~nan_mask
                kept = np.add.reduceat(
                    keep.astype(np.int64), start_list
                )
                offsets = np.concatenate(([0], np.cumsum(kept)))
                bank.extend_runs(
                    run_list, offsets[:-1], offsets[1:], col[keep]
                )
            else:
                bank.extend_runs(run_list, start_list, stop_list, col)

    def group_results(self, gid: int) -> List[Any]:
        out: List[Any] = []
        for i, agg in enumerate(self._aggregates):
            if agg.kind == "quantile":
                fw = self._banks[self._bank_of[i]].sketch(gid)
                out.append(float(fw.query(agg.phi)) if fw.n else None)
            else:
                out.append(self._scalars[i][gid].result())
        return out

    def certified_error_bounds(self) -> Dict[str, List[float]]:
        """Per-group certified Lemma 5 bounds (elements) by output name."""
        out: Dict[str, List[float]] = {}
        for i, agg in enumerate(self._aggregates):
            if agg.kind == "quantile" and agg.output_name not in out:
                out[agg.output_name] = self._banks[
                    self._bank_of[i]
                ].error_bounds()
        return out

    @property
    def memory_elements(self) -> int:
        return sum(bank.memory_elements for bank in self._banks.values())


@dataclass
class GroupByResult:
    """Rows of a grouped aggregation, plus execution statistics.

    ``quantile_error_bounds`` maps each quantile aggregate's output name
    to a dictionary of certified per-group rank-error bounds (in
    elements, Lemma 5), keyed by the group's key tuple (``()`` for an
    ungrouped aggregation) -- the a-posteriori guarantee each answer in
    :attr:`rows` actually carries.
    """

    group_columns: List[str]
    aggregate_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    n_rows_scanned: int = 0
    sketch_memory_elements: int = 0
    quantile_error_bounds: Dict[str, Dict[Tuple[Any, ...], float]] = field(
        default_factory=dict
    )

    def column(self, name: str) -> List[Any]:
        if self.rows and name not in self.rows[0]:
            raise QueryError(f"result has no column {name!r}")
        return [row[name] for row in self.rows]

    def sorted_rows(self) -> List[Dict[str, Any]]:
        """Rows ordered by group key (results are grouped, not ordered)."""
        return sorted(
            self.rows,
            key=lambda r: tuple(r[c] for c in self.group_columns),
        )

    def __len__(self) -> int:
        return len(self.rows)


def _partition_chunk(
    chunk: Chunk, group_by: Sequence[str]
) -> Tuple[np.ndarray, List[Any], np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised key partition of one chunk into per-group runs.

    One stable ``argsort`` of the (encoded) key column does all the work:
    rows with equal keys become one contiguous run, in arrival order
    (stability), and ``perm[starts[j]]`` is each run's first-appearance
    row, which lets the caller register new groups in exactly the
    insertion order the old per-row dict bucketing produced.

    Returns ``(perm, labels, first_rows, starts, stops)``: run ``j``
    comprises rows ``perm[starts[j]:stops[j]]``, all carrying the
    Python-level key ``labels[j]`` (scalar for a single key column,
    tuple for composite keys).

    Composite keys fold per-column ``np.unique`` inverse codes into a
    mixed-radix code, re-compressed after every fold so the code range
    never exceeds the chunk length (no overflow however many key columns).
    """
    raw_cols: List[Any] = []
    codes: Optional[np.ndarray] = None
    for name in group_by:
        values = chunk[name]
        raw_cols.append(values)
        arr = values if isinstance(values, np.ndarray) else np.asarray(values)
        if len(group_by) == 1:
            codes = arr
        elif codes is None:
            codes = np.unique(arr, return_inverse=True)[1].astype(np.int64)
        else:
            inv = np.unique(arr, return_inverse=True)[1]
            codes = codes * (int(inv.max()) + 1) + inv
            codes = np.unique(codes, return_inverse=True)[1]
    assert codes is not None
    perm = np.argsort(codes, kind="stable")
    sorted_codes = codes[perm]
    bounds = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    stops = np.append(bounds, len(sorted_codes))
    first_rows = perm[starts]
    labels: List[Any]
    if len(group_by) == 1:
        col = raw_cols[0]
        if isinstance(col, np.ndarray):
            labels = sorted_codes[starts].tolist()
        else:
            labels = [col[int(r)] for r in first_rows]
    else:
        labels = [
            tuple(
                col[r].item() if isinstance(col, np.ndarray) else col[r]
                for col in raw_cols
            )
            for r in (int(v) for v in first_rows)
        ]
    return perm, labels, first_rows, starts, stops


def execute_group_by(
    chunks: Iterable[Chunk],
    group_by: Sequence[str],
    aggregates: Sequence[Aggregate],
    *,
    n_hint: int = 2**24,
) -> GroupByResult:
    """One pass over *chunks*, grouping by *group_by*, computing *aggregates*.

    ``n_hint`` sizes the per-group quantile sketches (the table's row
    count is the natural choice: no group can exceed it, so every group's
    guarantee holds a fortiori).  With an empty *group_by* the whole input
    forms a single group (plain aggregation).

    Each chunk is processed with two vectorised steps -- one stable
    ``argsort`` partition of the key column into per-group runs, then
    bank-routed run ingest -- with no per-row Python and no per-group
    masking of the chunk.
    """
    if not aggregates:
        raise QueryError("need at least one aggregate")
    aggs = _AggregatorSet(aggregates, n_hint)
    registry: Dict[Any, int] = {}  # group key -> dense group id
    result = GroupByResult(
        group_columns=list(group_by),
        aggregate_names=[a.output_name for a in aggregates],
    )
    for chunk in chunks:
        result.n_rows_scanned += chunk.n_rows
        if chunk.n_rows == 0:
            continue
        if not group_by:
            if not registry:
                registry[()] = aggs.add_group()
            aggs.update(chunk, None, (0,), (0,), (chunk.n_rows,))
            continue
        perm, labels, first_rows, starts, stops = _partition_chunk(
            chunk, group_by
        )
        run_gids = np.empty(len(labels), dtype=np.int64)
        # register new groups in first-appearance order (not run order,
        # which is key-sorted) to keep the old dict-insertion row order
        for j in np.argsort(first_rows, kind="stable"):
            label = labels[int(j)]
            gid = registry.get(label)
            if gid is None:
                gid = aggs.add_group()
                registry[label] = gid
            run_gids[j] = gid
        if len(labels) == 1:
            # whole chunk is one group: skip the permutation entirely
            aggs.update(
                chunk, None, (int(run_gids[0]),), (0,), (chunk.n_rows,)
            )
            continue
        aggs.update(chunk, perm, run_gids, starts, stops)
    for label, gid in registry.items():
        row: Dict[str, Any] = {}
        if group_by:
            key_values = label if len(group_by) > 1 else (label,)
            for name, value in zip(group_by, key_values):
                row[name] = value
        for name, value in zip(result.aggregate_names, aggs.group_results(gid)):
            row[name] = value
        result.rows.append(row)
    result.sketch_memory_elements = aggs.memory_elements
    per_name_bounds = aggs.certified_error_bounds()
    if per_name_bounds:
        key_tuples: List[Tuple[Any, ...]] = []
        for label in registry:
            if not group_by:
                key_tuples.append(())
            elif len(group_by) > 1:
                key_tuples.append(label)
            else:
                key_tuples.append((label,))
        for name, per_gid in per_name_bounds.items():
            result.quantile_error_bounds[name] = {
                key: per_gid[gid]
                for key, gid in zip(key_tuples, registry.values())
            }
    return result
