"""Fluent query builder over engine tables.

The programmatic counterpart of the SQL front-end::

    result = (
        Query(trades)
        .where(col("price") > 0)
        .group_by("symbol")
        .aggregate(
            median("price", epsilon=0.005),
            quantile("price", 0.99, epsilon=0.005),
            count(),
        )
        .execute()
    )

Execution is one chunked pass: scan -> filter -> group/aggregate, with all
quantile aggregates answered by bounded-memory sketches.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from ..core.errors import QueryError
from .expressions import Expression
from .groupby import Aggregate, GroupByResult, execute_group_by
from .storage import StoredTable
from .table import Table

__all__ = ["Query"]

_SourceTable = Union[Table, StoredTable]


class Query:
    """A single-pass aggregation query against a (stored or in-memory) table."""

    def __init__(self, table: _SourceTable) -> None:
        self.table = table
        self._predicate: Optional[Expression] = None
        self._group_by: List[str] = []
        self._aggregates: List[Aggregate] = []
        self._having: Optional[Expression] = None
        self._order_by: List[tuple] = []  # (column, descending)
        self._limit: Optional[int] = None
        self._projection: Optional[List[str]] = None

    def where(self, predicate: Expression) -> "Query":
        """Filter rows by *predicate* (combines with AND if called twice)."""
        for name in predicate.columns():
            self.table.schema[name]  # raises on unknown column
        if self._predicate is None:
            self._predicate = predicate
        else:
            self._predicate = self._predicate & predicate
        return self

    def select(self, *columns: str) -> "Query":
        """Plain projection: return rows of *columns* (no aggregation).

        Mutually exclusive with :meth:`aggregate` / :meth:`group_by`.
        ``select("*")`` (or no arguments) selects every column.  Combine
        with :meth:`where`, :meth:`order_by` and :meth:`limit`; with a
        LIMIT and no ORDER BY the scan stops early.
        """
        if not columns or columns == ("*",):
            names = self.table.schema.names()
        else:
            names = list(columns)
            for name in names:
                self.table.schema[name]
        self._projection = names
        return self

    def group_by(self, *columns: str) -> "Query":
        """Group rows by the given key columns."""
        for name in columns:
            self.table.schema[name]
        self._group_by = list(columns)
        return self

    def aggregate(self, *aggregates: Aggregate) -> "Query":
        """Set the aggregate output columns."""
        for agg in aggregates:
            if agg.column is not None:
                field = self.table.schema[agg.column]
                if not field.dtype.is_numeric and agg.kind != "count":
                    raise QueryError(
                        f"{agg.kind.upper()} needs a numeric column, "
                        f"{agg.column!r} is {field.dtype.value}"
                    )
        self._aggregates = list(aggregates)
        return self

    def having(self, predicate: Expression) -> "Query":
        """Filter *result rows* by a predicate over group keys and
        aggregate output columns (reference aggregates by their alias)."""
        if self._having is None:
            self._having = predicate
        else:
            self._having = self._having & predicate
        return self

    def order_by(self, column: str, *, descending: bool = False) -> "Query":
        """Sort result rows by an output column (stack for tie-breaks)."""
        self._order_by.append((column, descending))
        return self

    def limit(self, n: int) -> "Query":
        """Keep only the first *n* result rows (after ordering)."""
        if n < 0:
            raise QueryError(f"LIMIT must be non-negative, got {n}")
        self._limit = n
        return self

    def _postprocess(self, result: GroupByResult) -> GroupByResult:
        rows = result.rows
        if self._having is not None and rows:
            available = set(rows[0])
            for name in self._having.columns():
                if name not in available:
                    raise QueryError(
                        f"HAVING references unknown output column {name!r}; "
                        f"available: {sorted(available)}"
                    )
            from .table import Chunk

            chunk = Chunk(
                columns={
                    name: [row[name] for row in rows] for name in rows[0]
                },
                n_rows=len(rows),
            )
            mask = self._having.evaluate(chunk)
            rows = [row for row, keep in zip(rows, mask) if keep]
        for column, descending in reversed(self._order_by):
            if rows and column not in rows[0]:
                raise QueryError(
                    f"ORDER BY references unknown output column {column!r}"
                )
            rows = sorted(rows, key=lambda r: r[column], reverse=descending)
        if self._limit is not None:
            rows = rows[: self._limit]
        result.rows = rows
        return result

    def _scan_columns(self) -> List[str]:
        needed = set(self._group_by)
        for agg in self._aggregates:
            if agg.column is not None:
                needed.add(agg.column)
        if self._predicate is not None:
            needed.update(self._predicate.columns())
        return [n for n in self.table.schema.names() if n in needed]

    def _execute_projection(
        self, chunk_size: Optional[int]
    ) -> GroupByResult:
        assert self._projection is not None
        needed = list(self._projection)
        if self._predicate is not None:
            for name in self._predicate.columns():
                if name not in needed:
                    needed.append(name)
        for column, _desc in self._order_by:
            if column not in self._projection:
                raise QueryError(
                    f"ORDER BY references unselected column {column!r}"
                )
        scan_kwargs: dict = {"columns": needed}
        if chunk_size is not None:
            scan_kwargs["chunk_size"] = chunk_size
        result = GroupByResult(
            group_columns=[], aggregate_names=list(self._projection)
        )
        can_stop_early = self._limit is not None and not self._order_by
        for chunk in self.table.scan(**scan_kwargs):
            result.n_rows_scanned += chunk.n_rows
            if self._predicate is not None:
                chunk = chunk.take(self._predicate.evaluate(chunk))
            for i in range(chunk.n_rows):
                row = {}
                for name in self._projection:
                    value = chunk[name][i]
                    row[name] = value if isinstance(value, str) else value.item()
                result.rows.append(row)
                if can_stop_early and len(result.rows) >= self._limit:
                    break
            if can_stop_early and len(result.rows) >= self._limit:
                break
        for column, descending in reversed(self._order_by):
            result.rows = sorted(
                result.rows, key=lambda r: r[column], reverse=descending
            )
        if self._limit is not None:
            result.rows = result.rows[: self._limit]
        return result

    def execute(self, chunk_size: Optional[int] = None) -> GroupByResult:
        """Run the query in one pass over the table."""
        if self._projection is not None:
            if self._aggregates or self._group_by or self._having is not None:
                raise QueryError(
                    "select() projections cannot be combined with "
                    "aggregate()/group_by()/having()"
                )
            return self._execute_projection(chunk_size)
        if not self._aggregates:
            raise QueryError(
                "query has no aggregates; call .aggregate(...) or .select(...)"
            )
        columns = self._scan_columns()
        scan_kwargs: dict = {"columns": columns or None}
        if chunk_size is not None:
            scan_kwargs["chunk_size"] = chunk_size
        chunks = self.table.scan(**scan_kwargs)
        if self._predicate is not None:
            predicate = self._predicate

            def filtered():
                for chunk in chunks:
                    mask = predicate.evaluate(chunk)
                    yield chunk.take(mask)

            source: Any = filtered()
        else:
            source = chunks
        result = execute_group_by(
            source,
            self._group_by,
            self._aggregates,
            n_hint=len(self.table),
        )
        return self._postprocess(result)
