"""In-memory tables and chunked scans for the miniature column engine.

A :class:`Table` is a schema plus one array per column.  The only read
path is :meth:`Table.scan` -- a forward, chunked, single-pass iterator --
because the whole point of the reproduction is algorithms that live with
exactly that access pattern (Section 1.2: one pass, GROUP BY-compatible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .types import DataType, Field, Schema

__all__ = ["Chunk", "Table"]

DEFAULT_SCAN_CHUNK = 1 << 14


@dataclass
class Chunk:
    """One block of rows from a scan: column name -> values.

    Numeric columns are numpy slices; string columns are Python lists.
    All columns in a chunk have equal length.
    """

    columns: Dict[str, Any]
    n_rows: int

    def __getitem__(self, name: str) -> Any:
        if name not in self.columns:
            raise ConfigurationError(
                f"chunk has no column {name!r}; has {sorted(self.columns)}"
            )
        return self.columns[name]

    def __len__(self) -> int:
        return self.n_rows

    def take(self, mask: np.ndarray) -> "Chunk":
        """Row-filter the chunk by a boolean *mask*."""
        if len(mask) != self.n_rows:
            raise ConfigurationError(
                f"mask length {len(mask)} != chunk rows {self.n_rows}"
            )
        cols: Dict[str, Any] = {}
        for name, values in self.columns.items():
            if isinstance(values, np.ndarray):
                cols[name] = values[mask]
            else:
                cols[name] = [v for v, keep in zip(values, mask) if keep]
        return Chunk(columns=cols, n_rows=int(mask.sum()))


class Table:
    """A named, schema-typed, column-oriented table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, Any],
    ) -> None:
        self.name = name
        self.schema = schema
        self._columns: Dict[str, Any] = {}
        n_rows: Optional[int] = None
        for field in schema:
            if field.name not in columns:
                raise ConfigurationError(
                    f"missing data for column {field.name!r}"
                )
            data = columns[field.name]
            if field.dtype.is_numeric:
                arr = np.asarray(data, dtype=field.dtype.numpy_dtype)
                if arr.ndim != 1:
                    raise ConfigurationError(
                        f"column {field.name!r} must be 1-d"
                    )
                self._columns[field.name] = arr
                length = len(arr)
            else:
                lst = [str(v) for v in data]
                self._columns[field.name] = lst
                length = len(lst)
            if n_rows is None:
                n_rows = length
            elif n_rows != length:
                raise ConfigurationError(
                    f"column {field.name!r} has {length} rows, "
                    f"expected {n_rows}"
                )
        self.n_rows = n_rows or 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(
        cls, name: str, data: Mapping[str, Any]
    ) -> "Table":
        """Build a table, inferring column types from the values."""
        fields = []
        for col_name, values in data.items():
            fields.append(Field(col_name, DataType.infer(values)))
        return cls(name, Schema(fields), data)

    # -- access ------------------------------------------------------------------

    def column(self, name: str) -> Any:
        """The full column array (tests / exact baselines only)."""
        self.schema[name]  # raises on unknown column
        return self._columns[name]

    def scan(
        self,
        chunk_size: int = DEFAULT_SCAN_CHUNK,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[Chunk]:
        """Single forward pass over the rows in blocks of *chunk_size*."""
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        names = list(columns) if columns is not None else self.schema.names()
        for n in names:
            self.schema[n]  # validate
        for start in range(0, self.n_rows, chunk_size):
            stop = min(start + chunk_size, self.n_rows)
            cols: Dict[str, Any] = {}
            for n in names:
                data = self._columns[n]
                cols[n] = data[start:stop]
            yield Chunk(columns=cols, n_rows=stop - start)

    def head(self, n: int = 5) -> List[Dict[str, Any]]:
        """The first *n* rows as dictionaries (debugging convenience)."""
        out = []
        for i in range(min(n, self.n_rows)):
            row = {}
            for field in self.schema:
                value = self._columns[field.name][i]
                row[field.name] = (
                    value if isinstance(value, str) else value.item()
                )
            out.append(row)
        return out

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.n_rows}, {self.schema!r})"
