"""CSV ingestion and export for engine tables.

Real columns arrive as CSV more often than as anything else.  This module
loads a CSV into a :class:`~repro.engine.table.Table` with simple type
inference (int64 -> float64 -> string, widening on conflict) and writes
tables back out, so the quantile machinery can be pointed at ordinary
data files::

    table = load_csv("trades.csv")
    execute_sql("SELECT MEDIAN(price) FROM t GROUP BY symbol", {"t": table})

Only the standard library ``csv`` module is used; delimiters and headers
are configurable, values are never evaluated as code.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, StorageError
from .table import Table
from .types import DataType, Field, Schema

__all__ = ["load_csv", "save_csv"]


def _classify(text: str) -> DataType:
    """The narrowest type that can hold *text*."""
    try:
        int(text)
        return DataType.INT64
    except ValueError:
        pass
    try:
        float(text)
        return DataType.FLOAT64
    except ValueError:
        return DataType.STRING


_WIDEN = {
    (DataType.INT64, DataType.FLOAT64): DataType.FLOAT64,
    (DataType.FLOAT64, DataType.INT64): DataType.FLOAT64,
}


def _merge(a: "DataType | None", b: DataType) -> DataType:
    if a is None or a is b:
        return b
    return _WIDEN.get((a, b), DataType.STRING)


def load_csv(
    path: "str | os.PathLike",
    *,
    table_name: Optional[str] = None,
    delimiter: str = ",",
    has_header: bool = True,
    column_names: Optional[Sequence[str]] = None,
) -> Table:
    """Load a CSV file as an engine table with inferred column types.

    Empty cells become ``nan`` in float columns, ``0`` in integer columns
    that never see a decimal point (they widen to float if mixed), and
    empty strings in string columns.  A ragged row raises
    :class:`~repro.core.errors.StorageError` with its line number.
    """
    path = os.fspath(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        rows = [row for row in reader if row]  # skip fully blank lines
    if not rows:
        raise StorageError(f"{path}: empty CSV")
    if has_header:
        header, rows = rows[0], rows[1:]
    elif column_names is not None:
        header = list(column_names)
    else:
        header = [f"c{i}" for i in range(len(rows[0]))]
    if column_names is not None and has_header:
        header = list(column_names)
    if len(set(header)) != len(header):
        raise StorageError(f"{path}: duplicate column names in {header}")
    if not rows:
        raise StorageError(f"{path}: CSV has a header but no data rows")
    width = len(header)
    for line_no, row in enumerate(rows, start=2 if has_header else 1):
        if len(row) != width:
            raise StorageError(
                f"{path}:{line_no}: expected {width} fields, got {len(row)}"
            )

    # type inference over non-empty cells, column by column
    dtypes: List["DataType | None"] = [None] * width
    for row in rows:
        for i, cell in enumerate(row):
            if cell != "" and dtypes[i] is not DataType.STRING:
                dtypes[i] = _merge(dtypes[i], _classify(cell))
    columns: Dict[str, Any] = {}
    fields = []
    for i, name in enumerate(header):
        dtype = dtypes[i] or DataType.STRING
        raw = [row[i] for row in rows]
        if dtype is DataType.STRING:
            columns[name] = raw
        elif dtype is DataType.INT64:
            if any(cell == "" for cell in raw):
                dtype = DataType.FLOAT64  # NaN needs a float column
            else:
                columns[name] = np.array([int(c) for c in raw], dtype=np.int64)
        if dtype is DataType.FLOAT64:
            columns[name] = np.array(
                [float(c) if c != "" else np.nan for c in raw],
                dtype=np.float64,
            )
        fields.append(Field(name, dtype))
    name = table_name or os.path.splitext(os.path.basename(path))[0]
    return Table(name, Schema(fields), columns)


def save_csv(
    table: Table,
    path: "str | os.PathLike",
    *,
    delimiter: str = ",",
) -> None:
    """Write *table* to *path* as a headered CSV."""
    if table.n_rows == 0:
        raise ConfigurationError("refusing to write an empty table")
    names = table.schema.names()
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(names)
        data = [table.column(n) for n in names]
        for i in range(table.n_rows):
            row = []
            for column in data:
                value = column[i]
                if isinstance(value, str):
                    row.append(value)
                elif isinstance(value, (np.integer, int)):
                    row.append(int(value))
                else:
                    row.append(repr(float(value)))
            writer.writerow(row)
