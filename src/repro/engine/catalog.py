"""A tiny table catalog: named tables, persistence, one-line SQL.

Gathers the engine's pieces behind the interface a user of a real system
expects: register in-memory tables, attach stored ones, persist and
re-open a whole database directory, and run SQL against any of it::

    db = Catalog("warehouse/")       # directory created on first save
    db.register(trades)              # an in-memory Table
    db.save("trades")                # -> warehouse/trades/ (paged format)
    db.sql("SELECT MEDIAN(price, 0.005) FROM trades GROUP BY symbol")

Reopening ``Catalog("warehouse/")`` later attaches every stored table
lazily -- scans stream pages from disk, nothing is materialised.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from ..core.errors import QueryError, StorageError
from .groupby import GroupByResult
from .query import Query
from .sql import execute_sql
from .storage import StoredTable, save_table
from .table import Table

__all__ = ["Catalog"]

_AnyTable = Union[Table, StoredTable]


class Catalog:
    """Named tables, optionally backed by a database directory."""

    def __init__(self, directory: "str | os.PathLike | None" = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self._tables: Dict[str, _AnyTable] = {}
        if self.directory is not None and os.path.isdir(self.directory):
            for entry in sorted(os.listdir(self.directory)):
                path = os.path.join(self.directory, entry)
                if os.path.isfile(os.path.join(path, "meta.json")):
                    self._tables[entry] = StoredTable(path)

    # -- registration --------------------------------------------------------

    def register(self, table: _AnyTable, name: Optional[str] = None) -> None:
        """Add *table* under *name* (defaults to the table's own name)."""
        key = name or table.name
        if not key:
            raise QueryError("a table needs a name to be registered")
        self._tables[key] = table

    def attach(self, directory: "str | os.PathLike", name: Optional[str] = None) -> StoredTable:
        """Attach an existing stored table from *directory*."""
        stored = StoredTable(directory)
        self.register(stored, name)
        return stored

    def drop(self, name: str) -> None:
        """Forget a table (never deletes files)."""
        if name not in self._tables:
            raise QueryError(f"unknown table {name!r}")
        del self._tables[name]

    # -- persistence ------------------------------------------------------------

    def save(self, name: str) -> StoredTable:
        """Persist an in-memory table into the catalog directory and swap
        the registration to its disk-backed form."""
        if self.directory is None:
            raise StorageError("this catalog has no backing directory")
        table = self.table(name)
        if isinstance(table, StoredTable):
            return table
        target = os.path.join(self.directory, name)
        os.makedirs(self.directory, exist_ok=True)
        save_table(table, target)
        stored = StoredTable(target)
        self._tables[name] = stored
        return stored

    # -- access -------------------------------------------------------------------

    def table(self, name: str) -> _AnyTable:
        if name not in self._tables:
            raise QueryError(
                f"unknown table {name!r}; catalog has {self.names()}"
            )
        return self._tables[name]

    def names(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- querying ------------------------------------------------------------------

    def query(self, name: str) -> Query:
        """A fluent :class:`~repro.engine.query.Query` over one table."""
        return Query(self.table(name))

    def sql(self, statement: str) -> GroupByResult:
        """Run a SQL statement against the catalog's tables."""
        return execute_sql(statement, self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = f" @ {self.directory}" if self.directory else ""
        return f"Catalog({self.names()}{backing})"
