"""Predicate expressions for scans (the WHERE clause).

A tiny vectorised expression tree: column references, literals, the six
comparisons, and AND / OR / NOT.  ``evaluate(chunk)`` returns a boolean
numpy mask over the chunk's rows, so filtering stays a streaming,
single-pass operation.
"""

from __future__ import annotations

from typing import Any, Callable, List

import numpy as np

from ..core.errors import QueryError
from .table import Chunk

__all__ = ["Expression", "col", "lit", "Column", "Literal", "Comparison", "BooleanOp", "Not"]


class Expression:
    """Base class; builds comparisons/boolean combinators via operators."""

    def evaluate(self, chunk: Chunk) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column names the expression reads (for scan projection)."""
        raise NotImplementedError

    # comparisons build predicate nodes
    def __eq__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), "==")

    def __ne__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), "!=")

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), "<")

    def __le__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), "<=")

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), ">")

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), ">=")

    def __and__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp(self, other, "and")

    def __or__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp(self, other, "or")

    def __invert__(self) -> "Not":
        return Not(self)

    __hash__ = None  # type: ignore[assignment]  # == is overloaded


def _wrap(value: Any) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Column(Expression):
    """A reference to a table column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, chunk: Chunk) -> Any:
        return chunk[self.name]

    def columns(self) -> List[str]:
        return [self.name]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value (number or string)."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, chunk: Chunk) -> Any:
        return self.value

    def columns(self) -> List[str]:
        return []

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: "dict[str, Callable[[Any, Any], Any]]" = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _as_mask(values: Any, n_rows: int) -> np.ndarray:
    """Normalise comparison output to a boolean numpy mask."""
    if isinstance(values, np.ndarray):
        return values.astype(bool)
    if isinstance(values, list):
        return np.asarray(values, dtype=bool)
    # scalar broadcast (e.g. comparing two literals)
    return np.full(n_rows, bool(values))


class Comparison(Expression):
    """``left <op> right`` evaluated element-wise."""

    def __init__(self, left: Expression, right: Expression, op: str) -> None:
        if op not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.left = left
        self.right = right
        self.op = op

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        lhs = self.left.evaluate(chunk)
        rhs = self.right.evaluate(chunk)
        if isinstance(lhs, list) and not isinstance(rhs, (list, np.ndarray)):
            result = [_COMPARATORS[self.op](v, rhs) for v in lhs]
        elif isinstance(rhs, list) and not isinstance(lhs, (list, np.ndarray)):
            result = [_COMPARATORS[self.op](lhs, v) for v in rhs]
        else:
            result = _COMPARATORS[self.op](lhs, rhs)
        return _as_mask(result, chunk.n_rows)

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """``left AND/OR right`` over boolean masks."""

    def __init__(self, left: Expression, right: Expression, op: str) -> None:
        if op not in ("and", "or"):
            raise QueryError(f"unsupported boolean operator {op!r}")
        self.left = left
        self.right = right
        self.op = op

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        lhs = _as_mask(self.left.evaluate(chunk), chunk.n_rows)
        rhs = _as_mask(self.right.evaluate(chunk), chunk.n_rows)
        return lhs & rhs if self.op == "and" else lhs | rhs

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Not(Expression):
    """Boolean negation of a predicate."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return ~_as_mask(self.operand.evaluate(chunk), chunk.n_rows)

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


def col(name: str) -> Column:
    """Reference a column in a predicate: ``col("price") > 10``."""
    return Column(name)


def lit(value: Any) -> Literal:
    """An explicit literal (usually inferred automatically)."""
    return Literal(value)
