"""A miniature SQL front-end for quantile aggregation queries.

Section 7 of the paper: *"Practical implementations in 'real' Relational
Database Management Systems will be challenged by the need to support
additional parameters (phi, epsilon and delta) for SQL column functions
which have only a single parameter up to this point.  It will also require
some ingenuity to handle multiple quantiles efficiently on the same column
(e.g., SELECT QUANTILE (0.35, col1), QUANTILE (0.50, col1), ...)."*

This module demonstrates exactly that surface::

    SELECT QUANTILE(0.35, col1), QUANTILE(0.5, col1, 0.001) AS med,
           COUNT(*), AVG(col1)
    FROM t
    WHERE col2 > 10 AND grp = 'a'
    GROUP BY grp

Supported grammar (case-insensitive keywords):

* aggregates: ``QUANTILE(phi, col [, epsilon])``, ``MEDIAN(col [, eps])``,
  ``COUNT(*)``, ``SUM/AVG/MIN/MAX(col)``, each with optional ``AS alias``;
* ``WHERE`` with ``= != < <= > >=``, ``AND``/``OR``/``NOT``, parentheses,
  numeric and single-quoted string literals;
* single-table ``FROM``, optional multi-column ``GROUP BY``;
* ``HAVING`` over the aggregate outputs (reference aggregates by alias),
  multi-key ``ORDER BY ... [ASC|DESC]`` and ``LIMIT``.

Multiple ``QUANTILE`` calls on the same column (at the same epsilon) share
one sketch -- the "ingenuity" Section 7 asks for, delivered by
Section 4.7's free multi-quantile reads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

from ..core.errors import QueryError, SQLSyntaxError
from .expressions import Expression, col, lit
from .groupby import Aggregate, DEFAULT_EPSILON, GroupByResult
from .query import Query
from .storage import StoredTable
from .table import Table

__all__ = ["execute_sql", "parse_sql", "ParsedQuery"]


@dataclass
class ParsedQuery:
    """The parsed form of a statement (see :func:`parse_sql`)."""

    aggregates: List["Aggregate"]
    table: str
    predicate: Optional["Expression"]
    group_by: List[str]
    having: Optional["Expression"] = None
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    projection: Optional[List[str]] = None  #: plain SELECT col, ... list

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+\.\d*|\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*-])
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "and",
    "or",
    "not",
    "as",
    "having",
    "order",
    "limit",
    "asc",
    "desc",
}

_AGG_FUNCS = {
    "quantile", "median", "count", "sum", "avg", "min", "max", "var",
    "stddev",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.value}"


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SQLSyntaxError(f"cannot tokenize near {rest[:20]!r}")
        pos = match.end()
        for kind in ("number", "string", "ident", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                if kind == "ident" and value.lower() in _KEYWORDS:
                    tokens.append(_Token("keyword", value.lower()))
                else:
                    tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            want = f"{kind} {value!r}" if value else kind
            raise SQLSyntaxError(
                f"expected {want}, got {token.kind} {token.value!r}"
            )
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if (
            token is not None
            and token.kind == kind
            and (value is None or token.value == value)
        ):
            self._pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self._expect("keyword", "select")
        projection = self._try_projection()
        if projection is not None:
            aggregates: List[Aggregate] = []
        else:
            aggregates = [self._aggregate()]
            while self._accept("punct", ","):
                aggregates.append(self._aggregate())
        self._expect("keyword", "from")
        table_name = self._expect("ident").value
        predicate = None
        if self._accept("keyword", "where"):
            predicate = self._or_expr()
        group_by: List[str] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expect("ident").value)
            while self._accept("punct", ","):
                group_by.append(self._expect("ident").value)
        having = None
        if self._accept("keyword", "having"):
            having = self._or_expr()
        order_by: List[Tuple[str, bool]] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._order_term())
            while self._accept("punct", ","):
                order_by.append(self._order_term())
        limit = None
        if self._accept("keyword", "limit"):
            text = self._expect("number").value
            if "." in text:
                raise SQLSyntaxError(f"LIMIT needs an integer, got {text}")
            limit = int(text)
        trailing = self._peek()
        if trailing is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input at {trailing.value!r}"
            )
        if projection is not None and (group_by or having is not None):
            raise SQLSyntaxError(
                "plain column projections cannot use GROUP BY / HAVING"
            )
        return ParsedQuery(
            aggregates=aggregates,
            table=table_name,
            predicate=predicate,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            projection=projection,
        )

    def _try_projection(self) -> Optional[List[str]]:
        """Detect a plain-column select list without consuming aggregates.

        Returns the column list (or ``["*"]``) when the select list is
        plain identifiers / ``*``; returns ``None`` (position unchanged)
        when it is an aggregate list.
        """
        start = self._pos
        if self._accept("punct", "*"):
            if self._accept("keyword", "from"):
                self._pos -= 1  # leave FROM for the caller
                return ["*"]
            self._pos = start
            return None
        columns: List[str] = []
        while True:
            token = self._peek()
            if token is None or token.kind != "ident":
                self._pos = start
                return None
            lookahead = (
                self._tokens[self._pos + 1]
                if self._pos + 1 < len(self._tokens)
                else None
            )
            if lookahead is not None and lookahead.kind == "punct" and (
                lookahead.value == "("
            ):
                self._pos = start
                return None  # ident( -> an aggregate call
            columns.append(self._next().value)
            if self._accept("punct", ","):
                continue
            nxt = self._peek()
            if nxt is not None and nxt.kind == "keyword" and nxt.value == "from":
                return columns
            self._pos = start
            return None

    def _order_term(self) -> Tuple[str, bool]:
        column = self._expect("ident").value
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return column, descending

    def _aggregate(self) -> Aggregate:
        func_token = self._expect("ident")
        func = func_token.value.lower()
        if func not in _AGG_FUNCS:
            raise SQLSyntaxError(
                f"unknown aggregate function {func_token.value!r}; "
                f"supported: {sorted(f.upper() for f in _AGG_FUNCS)}"
            )
        self._expect("punct", "(")
        agg = self._aggregate_body(func)
        self._expect("punct", ")")
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").value
        if alias is not None:
            agg = Aggregate(
                agg.kind, agg.column, phi=agg.phi, epsilon=agg.epsilon,
                alias=alias,
            )
        return agg

    def _aggregate_body(self, func: str) -> Aggregate:
        if func == "count":
            self._expect("punct", "*")
            return Aggregate("count")
        if func == "quantile":
            phi = float(self._expect("number").value)
            self._expect("punct", ",")
            column = self._expect("ident").value
            epsilon = DEFAULT_EPSILON
            if self._accept("punct", ","):
                epsilon = float(self._expect("number").value)
            return Aggregate("quantile", column, phi=phi, epsilon=epsilon)
        if func == "median":
            column = self._expect("ident").value
            epsilon = DEFAULT_EPSILON
            if self._accept("punct", ","):
                epsilon = float(self._expect("number").value)
            return Aggregate("quantile", column, phi=0.5, epsilon=epsilon)
        column = self._expect("ident").value
        return Aggregate(func, column)

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = left & self._not_expr()
        return left

    def _not_expr(self) -> Expression:
        if self._accept("keyword", "not"):
            return ~self._not_expr()
        return self._comparison()

    def _comparison(self) -> Expression:
        if self._accept("punct", "("):
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        left = self._operand()
        op_token = self._expect("op")
        right = self._operand()
        op = op_token.value
        if op == "=":
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    def _operand(self) -> Expression:
        token = self._next()
        if token.kind == "punct" and token.value == "-":
            number = self._expect("number")
            text = number.value
            return lit(-float(text) if "." in text else -int(text))
        if token.kind == "ident":
            return col(token.value)
        if token.kind == "number":
            text = token.value
            return lit(float(text) if "." in text else int(text))
        if token.kind == "string":
            return lit(token.value[1:-1].replace("''", "'"))
        raise SQLSyntaxError(
            f"expected a column, number or string, got {token.value!r}"
        )


def parse_sql(sql: str) -> ParsedQuery:
    """Parse *sql* into a :class:`ParsedQuery`."""
    tokens = _tokenize(sql)
    if not tokens:
        raise SQLSyntaxError("empty statement")
    return _Parser(tokens).parse()


def execute_sql(
    sql: str,
    catalog: Mapping[str, Union[Table, StoredTable]],
) -> GroupByResult:
    """Parse and run a quantile-aggregation statement against *catalog*.

    *catalog* maps table names to :class:`~repro.engine.table.Table` or
    :class:`~repro.engine.storage.StoredTable` objects.
    """
    parsed = parse_sql(sql)
    if parsed.table not in catalog:
        raise QueryError(
            f"unknown table {parsed.table!r}; catalog has "
            f"{sorted(catalog)}"
        )
    query = Query(catalog[parsed.table])
    if parsed.predicate is not None:
        query = query.where(parsed.predicate)
    if parsed.projection is not None:
        query = query.select(*parsed.projection)
    else:
        if parsed.group_by:
            query = query.group_by(*parsed.group_by)
        query = query.aggregate(*parsed.aggregates)
    if parsed.having is not None:
        query = query.having(parsed.having)
    for column, descending in parsed.order_by:
        query = query.order_by(column, descending=descending)
    if parsed.limit is not None:
        query = query.limit(parsed.limit)
    return query.execute()
