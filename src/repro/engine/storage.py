"""Page-based on-disk storage for engine tables.

The paper targets *disk-resident* datasets; the engine therefore persists
tables in a simple paged format so scans genuinely stream from disk:

* ``<dir>/meta.json`` -- table name, schema, row count, page size;
* ``<dir>/<column>.col`` -- per-column file: a 16-byte header followed by
  fixed-row-count pages.  Numeric pages are raw little-endian values;
  string pages are length-prefixed UTF-8.

:class:`StoredTable` re-exposes the chunked ``scan`` interface reading one
page at a time, so a full-table quantile computation touches each page
exactly once -- the single-pass discipline the algorithms are built for.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, StorageError
from .table import Chunk, Table
from .types import DataType, Field, Schema

__all__ = ["save_table", "StoredTable"]

_COL_MAGIC = b"MRLCOL1\x00"
_COL_HEADER = struct.Struct("<8sQ")  # magic, n_values
DEFAULT_PAGE_ROWS = 1 << 13


def _column_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.col")


def save_table(
    table: Table,
    directory: "str | os.PathLike",
    *,
    page_rows: int = DEFAULT_PAGE_ROWS,
) -> None:
    """Persist *table* under *directory* (created if needed)."""
    if page_rows < 1:
        raise ConfigurationError("page_rows must be >= 1")
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    meta = {
        "name": table.name,
        "n_rows": table.n_rows,
        "page_rows": page_rows,
        "schema": [
            {"name": f.name, "dtype": f.dtype.value} for f in table.schema
        ],
    }
    with open(os.path.join(directory, "meta.json"), "w") as fh:
        json.dump(meta, fh, indent=2)
    for field in table.schema:
        data = table.column(field.name)
        with open(_column_path(directory, field.name), "wb") as fh:
            fh.write(_COL_HEADER.pack(_COL_MAGIC, table.n_rows))
            if field.dtype.is_numeric:
                arr = np.ascontiguousarray(
                    data, dtype=field.dtype.numpy_dtype
                )
                fh.write(arr.tobytes())
            else:
                for value in data:
                    raw = value.encode("utf-8")
                    fh.write(struct.pack("<I", len(raw)))
                    fh.write(raw)


class StoredTable:
    """A disk-resident table readable only through single-pass scans."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = os.fspath(directory)
        meta_path = os.path.join(self.directory, "meta.json")
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
        except FileNotFoundError as exc:
            raise StorageError(f"no table at {self.directory}") from exc
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt metadata at {meta_path}") from exc
        try:
            self.name = meta["name"]
            self.n_rows = int(meta["n_rows"])
            self.page_rows = int(meta["page_rows"])
            self.schema = Schema(
                [
                    Field(c["name"], DataType(c["dtype"]))
                    for c in meta["schema"]
                ]
            )
        except (KeyError, ValueError) as exc:
            raise StorageError(f"corrupt metadata at {meta_path}") from exc
        for field in self.schema:
            path = _column_path(self.directory, field.name)
            if not os.path.exists(path):
                raise StorageError(f"missing column file {path}")
            with open(path, "rb") as fh:
                header = fh.read(_COL_HEADER.size)
                if len(header) != _COL_HEADER.size:
                    raise StorageError(f"{path}: truncated header")
                magic, n = _COL_HEADER.unpack(header)
                if magic != _COL_MAGIC:
                    raise StorageError(f"{path}: bad magic {magic!r}")
                if n != self.n_rows:
                    raise StorageError(
                        f"{path}: holds {n} values, table has {self.n_rows}"
                    )

    def __len__(self) -> int:
        return self.n_rows

    # -- scanning ----------------------------------------------------------------

    def _scan_numeric(
        self, field: Field, chunk_size: int
    ) -> Iterator[np.ndarray]:
        path = _column_path(self.directory, field.name)
        width = field.dtype.numpy_dtype.itemsize
        with open(path, "rb") as fh:
            fh.seek(_COL_HEADER.size)
            remaining = self.n_rows
            while remaining > 0:
                take = min(chunk_size, remaining)
                raw = fh.read(take * width)
                if len(raw) != take * width:
                    raise StorageError(f"{path}: truncated payload")
                yield np.frombuffer(raw, dtype=field.dtype.numpy_dtype)
                remaining -= take

    def _scan_strings(
        self, field: Field, chunk_size: int
    ) -> Iterator[List[str]]:
        path = _column_path(self.directory, field.name)
        with open(path, "rb") as fh:
            fh.seek(_COL_HEADER.size)
            remaining = self.n_rows
            while remaining > 0:
                take = min(chunk_size, remaining)
                out: List[str] = []
                for _ in range(take):
                    size_raw = fh.read(4)
                    if len(size_raw) != 4:
                        raise StorageError(f"{path}: truncated payload")
                    (size,) = struct.unpack("<I", size_raw)
                    raw = fh.read(size)
                    if len(raw) != size:
                        raise StorageError(f"{path}: truncated payload")
                    out.append(raw.decode("utf-8"))
                yield out
                remaining -= take

    def scan(
        self,
        chunk_size: Optional[int] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[Chunk]:
        """Stream the table from disk, one block of pages at a time."""
        size = chunk_size or self.page_rows
        names = list(columns) if columns is not None else self.schema.names()
        iterators: Dict[str, Iterator[Any]] = {}
        for name in names:
            field = self.schema[name]
            if field.dtype.is_numeric:
                iterators[name] = self._scan_numeric(field, size)
            else:
                iterators[name] = self._scan_strings(field, size)
        remaining = self.n_rows
        while remaining > 0:
            take = min(size, remaining)
            cols = {name: next(iterators[name]) for name in names}
            yield Chunk(columns=cols, n_rows=take)
            remaining -= take

    def load(self) -> Table:
        """Materialise the whole table in memory (tests only)."""
        collected: Dict[str, List[Any]] = {n: [] for n in self.schema.names()}
        for chunk in self.scan():
            for name in self.schema.names():
                values = chunk[name]
                if isinstance(values, np.ndarray):
                    collected[name].append(values)
                else:
                    collected[name].extend(values)
        columns: Dict[str, Any] = {}
        for field in self.schema:
            if field.dtype.is_numeric:
                parts = collected[field.name]
                columns[field.name] = (
                    np.concatenate(parts)
                    if parts
                    else np.empty(0, dtype=field.dtype.numpy_dtype)
                )
            else:
                columns[field.name] = collected[field.name]
        return Table(self.name, self.schema, columns)
