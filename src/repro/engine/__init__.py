"""Miniature column engine: one-pass GROUP BY quantile aggregation.

The database substrate the paper's introduction and conclusion motivate
(Sections 1.2 and 7): tables (in memory or paged on disk), scans with
predicates, a GROUP BY executor whose QUANTILE/MEDIAN aggregates run the
MRL sketch per group in a single pass, and a small SQL front-end
demonstrating the ``SELECT QUANTILE(0.35, col1), QUANTILE(0.50, col1)``
surface.
"""

from .catalog import Catalog
from .csv_io import load_csv, save_csv
from .expressions import Expression, col, lit
from .groupby import (
    Aggregate,
    GroupByResult,
    avg,
    count,
    execute_group_by,
    max_,
    median,
    min_,
    quantile,
    stddev,
    sum_,
    var_,
)
from .query import Query
from .sql import ParsedQuery, execute_sql, parse_sql
from .storage import StoredTable, save_table
from .table import Chunk, Table
from .types import DataType, Field, Schema

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "Table",
    "Chunk",
    "StoredTable",
    "save_table",
    "load_csv",
    "save_csv",
    "Catalog",
    "Expression",
    "col",
    "lit",
    "Aggregate",
    "quantile",
    "median",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "var_",
    "stddev",
    "execute_group_by",
    "GroupByResult",
    "Query",
    "execute_sql",
    "parse_sql",
    "ParsedQuery",
]
