"""Schema types for the miniature column engine.

The engine exists to exercise the paper's database context: one-pass
GROUP BY aggregation with ``QUANTILE``/``MEDIAN`` column functions
(Sections 1.2 and 7).  It supports the three column types that scenario
needs -- 64-bit floats, 64-bit integers, and strings (group keys).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["DataType", "Field", "Schema"]


class DataType(enum.Enum):
    """Column data types supported by the engine."""

    FLOAT64 = "float64"
    INT64 = "int64"
    STRING = "string"

    @property
    def numpy_dtype(self) -> "np.dtype | None":
        if self is DataType.FLOAT64:
            return np.dtype("<f8")
        if self is DataType.INT64:
            return np.dtype("<i8")
        return None  # strings are stored as Python lists / object arrays

    @property
    def is_numeric(self) -> bool:
        return self is not DataType.STRING

    @classmethod
    def infer(cls, values: Any) -> "DataType":
        """Infer a column type from sample values."""
        if isinstance(values, np.ndarray):
            if values.dtype.kind == "f":
                return cls.FLOAT64
            if values.dtype.kind in "iu":
                return cls.INT64
            return cls.STRING
        for v in values:
            if isinstance(v, str):
                return cls.STRING
            if isinstance(v, (bool, np.bool_)):
                raise ConfigurationError("boolean columns are not supported")
            if isinstance(v, (float, np.floating)):
                return cls.FLOAT64
            if isinstance(v, (int, np.integer)):
                return cls.INT64
        raise ConfigurationError("cannot infer a column type from no values")


@dataclass(frozen=True)
class Field:
    """A named, typed column slot in a schema."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigurationError(
                f"column names must be alphanumeric/underscore, got "
                f"{self.name!r}"
            )


class Schema:
    """An ordered collection of :class:`Field` with name lookup."""

    def __init__(self, fields: Sequence[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate column names in {names}")
        if not fields:
            raise ConfigurationError("a schema needs at least one column")
        self.fields: List[Field] = list(fields)
        self._by_name = {f.name: f for f in self.fields}

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        if name not in self._by_name:
            raise ConfigurationError(
                f"unknown column {name!r}; schema has {self.names()}"
            )
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{f.name}:{f.dtype.value}" for f in self.fields)
        return f"Schema({cols})"
