"""Statistical validation of the guarantee across many trials.

Section 6 of the paper reports a single run per configuration.  A user
deciding whether to trust the library wants more: *across many seeds and
workloads, how does the observed error distribute relative to epsilon and
to the certified bound?*  :func:`verify_guarantee` runs that experiment
and returns the distribution; ``benchmarks/bench_validation.py`` turns it
into a table.

The hard assertions (max observed <= bound <= epsilon) are what the test
suite checks; the distribution itself (typically observed ~ epsilon/10) is
what the paper's Table 3 observes and what capacity planning wants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .core.errors import ConfigurationError
from .core.framework import QuantileFramework
from .streams import STANDARD_ORDERS
from .streams.generators import DataStream

__all__ = ["GuaranteeReport", "verify_guarantee"]


@dataclass(frozen=True)
class GuaranteeReport:
    """Observed-error distribution over many independent trials."""

    epsilon: float
    n: int
    policy: str
    n_trials: int
    n_measurements: int  #: trials x quantiles
    observed: "tuple[float, ...]"  #: every observed eps, sorted ascending
    worst_certified: float  #: max certified bound fraction across trials
    breaches: int  #: measurements exceeding epsilon (must be 0)

    @property
    def max_observed(self) -> float:
        return self.observed[-1] if self.observed else 0.0

    @property
    def mean_observed(self) -> float:
        return sum(self.observed) / len(self.observed) if self.observed else 0.0

    def percentile(self, q: float) -> float:
        """The q-quantile of the observed-error distribution itself."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        if not self.observed:
            return 0.0
        rank = min(
            max(math.ceil(q * len(self.observed)), 1), len(self.observed)
        )
        return self.observed[rank - 1]

    def __str__(self) -> str:
        return (
            f"GuaranteeReport(eps={self.epsilon}, n={self.n}, "
            f"policy={self.policy}, trials={self.n_trials}): "
            f"observed mean={self.mean_observed:.2e} "
            f"p95={self.percentile(0.95):.2e} max={self.max_observed:.2e}, "
            f"certified<= {self.worst_certified:.2e}, "
            f"breaches={self.breaches}"
        )


def verify_guarantee(
    epsilon: float,
    n: int,
    *,
    policy: str = "new",
    n_trials: int = 20,
    phis: Sequence[float] = (0.01, 0.25, 0.5, 0.75, 0.99),
    seed: int = 0,
    stream_factory: Optional[Callable[[int], DataStream]] = None,
) -> GuaranteeReport:
    """Run *n_trials* independent end-to-end trials and measure errors.

    Each trial draws a workload (by default: cycling through the standard
    arrival orders with fresh seeds), sizes a framework for
    ``(epsilon, n)``, streams the data through once, and measures the
    observed epsilon of every requested quantile against ground truth.
    """
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    observed: List[float] = []
    worst_certified = 0.0
    breaches = 0
    for trial in range(n_trials):
        trial_seed = seed + 7919 * trial
        if stream_factory is not None:
            stream = stream_factory(trial_seed)
        else:
            orders = STANDARD_ORDERS(n, seed=trial_seed)
            stream = orders[trial % len(orders)]
        fw = QuantileFramework.from_accuracy(epsilon, stream.n, policy=policy)
        for chunk in stream.chunks(1 << 18):
            fw.extend(chunk)
        estimates = fw.quantiles(list(phis))
        worst_certified = max(
            worst_certified, fw.error_bound() / stream.n
        )
        data = np.sort(stream.materialize())
        for phi, value in zip(phis, estimates):
            target = min(max(math.ceil(phi * stream.n), 1), stream.n)
            lo = int(np.searchsorted(data, value, side="left")) + 1
            hi = int(np.searchsorted(data, value, side="right"))
            err = (
                0
                if lo <= target <= hi
                else min(abs(target - lo), abs(target - hi))
            )
            frac = err / stream.n
            observed.append(frac)
            if frac > epsilon:
                breaches += 1
    return GuaranteeReport(
        epsilon=epsilon,
        n=n,
        policy=policy,
        n_trials=n_trials,
        n_measurements=len(observed),
        observed=tuple(sorted(observed)),
        worst_certified=worst_certified,
        breaches=breaches,
    )
