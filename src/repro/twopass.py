"""Exact quantiles in two passes with sketch-bounded memory.

Section 2.1 of the paper recalls Munro & Paterson's bound: exact one-pass
selection needs O(N) memory, and p passes need O(N^(1/p)).  The MRL sketch
makes the classic two-pass scheme practical with tight constants:

* **Pass 1** summarises the stream with an epsilon-sketch and brackets the
  target rank: the values at ``phi - epsilon`` and ``phi + epsilon`` are
  guaranteed (Lemma 5) to enclose the true ``phi``-quantile.
* **Pass 2** keeps only the elements inside the bracket -- at most
  ``~4 epsilon N`` of them, since each bracket endpoint's rank is within
  ``epsilon N`` of its target -- counts how many elements fall below the
  bracket, and selects the exact answer from the retained slice.

Total memory: ``O((1/eps) log^2(eps N) + eps N)`` elements; minimised at
``eps ~ sqrt(log(N) / N)``, i.e. roughly ``O~(sqrt(N))`` -- Munro &
Paterson's p=2 bound, achieved by composing the paper's own sketch with a
second scan.  :func:`choose_epsilon` picks a near-optimal epsilon
automatically.

The input must be re-readable (a :class:`~repro.streams.DataStream`, a
:class:`~repro.streams.FileStream`, an array, or any callable returning a
fresh chunk iterator) -- that is what "two passes" means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Union

import numpy as np

from .core.errors import ConfigurationError, EmptySummaryError
from .core.framework import QuantileFramework
from .core.parameters import optimal_parameters

__all__ = [
    "TwoPassResult",
    "MultiPassResult",
    "exact_quantile_two_pass",
    "exact_quantile_multipass",
    "choose_epsilon",
]

ChunkSource = Union[
    np.ndarray,
    Callable[[], Iterable[np.ndarray]],
]


def choose_epsilon(n: int) -> float:
    """An epsilon balancing sketch memory against pass-2 retention.

    Sketch memory grows like ``(1/eps) log^2(eps n)`` while pass 2 retains
    ``~4 eps n`` elements; equating the two gives
    ``eps ~ log(n) / (2 sqrt(n))``.  Clamped to a practical range.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    eps = max(math.log2(max(n, 2)), 1.0) / (2.0 * math.sqrt(n))
    return float(min(max(eps, 1e-6), 0.25))


@dataclass(frozen=True)
class TwoPassResult:
    """The exact answer plus the cost accounting of both passes."""

    value: float  #: the exact phi-quantile
    n: int
    target_rank: int  #: ceil(phi * n)
    bracket: "tuple[float, float]"  #: pass-1 value bracket [lo, hi]
    retained: int  #: elements kept in pass 2
    sketch_memory: int  #: b*k of the pass-1 sketch
    epsilon: float

    @property
    def peak_memory(self) -> int:
        """Max elements resident at any time across the two passes."""
        return max(self.sketch_memory, self.retained)


def _chunks(source: ChunkSource) -> Iterator[np.ndarray]:
    if isinstance(source, np.ndarray):
        yield source
        return
    if callable(source):
        yield from source()
        return
    raise ConfigurationError(
        "source must be a numpy array or a zero-argument callable "
        "returning chunks (use stream.chunks for DataStream/FileStream)"
    )


def exact_quantile_two_pass(
    source: "ChunkSource | object",
    phi: float,
    *,
    epsilon: "float | None" = None,
    n: "int | None" = None,
) -> TwoPassResult:
    """The exact ``phi``-quantile of a re-readable stream in two passes.

    *source* may be a numpy array, an object exposing ``chunks()`` and
    ``n`` (the library's stream types), or a zero-argument callable
    producing a fresh chunk iterator (in which case *n* is required).
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if hasattr(source, "chunks") and hasattr(source, "n"):
        stream = source
        total = int(stream.n)
        make_chunks = stream.chunks  # type: ignore[union-attr]
    elif isinstance(source, np.ndarray):
        arr = np.asarray(source, dtype=np.float64)
        total = len(arr)
        make_chunks = lambda: iter([arr])  # noqa: E731
    elif callable(source):
        if n is None:
            raise ConfigurationError(
                "a callable source needs the element count n"
            )
        total = int(n)
        make_chunks = source
    else:
        raise ConfigurationError(f"unsupported source {type(source)!r}")
    if total == 0:
        raise EmptySummaryError("cannot select from an empty stream")

    eps = choose_epsilon(total) if epsilon is None else float(epsilon)
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"epsilon must be in (0, 0.5), got {eps}")

    # ---- pass 1: bracket the target rank with the sketch -----------------
    sketch = QuantileFramework.from_accuracy(eps, total)
    for chunk in make_chunks():
        sketch.extend(chunk)
    phi_lo = max(phi - eps, 0.0)
    phi_hi = min(phi + eps, 1.0)
    lo, hi = sketch.quantiles([phi_lo, phi_hi])
    lo, hi = float(min(lo, hi)), float(max(lo, hi))
    target = min(max(math.ceil(phi * total), 1), total)

    # ---- pass 2: retain the bracket, count below, select exactly ---------
    below = 0  # elements strictly below the bracket
    kept: List[np.ndarray] = []
    for chunk in make_chunks():
        arr = np.asarray(chunk, dtype=np.float64)
        below += int((arr < lo).sum())
        inside = arr[(arr >= lo) & (arr <= hi)]
        if len(inside):
            kept.append(inside)
    retained = int(sum(len(c) for c in kept))
    if not (below < target <= below + retained):
        # Lemma 5 guarantees this never happens; a violation means the
        # source did not replay identically between the passes.
        raise ConfigurationError(
            "pass-2 bracket missed the target rank: the source must "
            "replay the same elements on both passes"
        )
    window = np.concatenate(kept)
    window.partition(target - below - 1)
    value = float(window[target - below - 1])
    return TwoPassResult(
        value=value,
        n=total,
        target_rank=target,
        bracket=(lo, hi),
        retained=retained,
        sketch_memory=sketch.memory_elements,
        epsilon=eps,
    )


@dataclass(frozen=True)
class MultiPassResult:
    """The exact answer plus per-pass cost accounting."""

    value: float
    n: int
    target_rank: int
    passes: int  #: scans actually performed (including the final select)
    windows: "tuple[int, ...]"  #: candidate-set size after each pass
    peak_memory: int  #: max resident elements at any time


def exact_quantile_multipass(
    source: "ChunkSource | object",
    phi: float,
    *,
    memory_budget: int,
    n: "int | None" = None,
    max_passes: int = 64,
) -> MultiPassResult:
    """The exact ``phi``-quantile under a hard *memory_budget*, in as many
    passes as that budget requires.

    Munro & Paterson (Section 2.1 of the paper): exact selection with
    O(N^(1/p)) memory needs p passes.  This routine realises the trade-off
    operationally: each pass runs an MRL sketch *within the budget* to
    shrink the candidate value window; once the surviving candidates fit in
    the budget, a final filtered pass selects exactly.

    Per pass, a budget of ``M`` elements buys a sketch accuracy of roughly
    ``eps(M)`` (inverted from the Section 4.5 optimiser), so the candidate
    set shrinks by a factor ``~2 eps(M)`` each scan -- a few passes suffice
    even for tiny budgets.
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if memory_budget < 8:
        raise ConfigurationError(
            f"memory_budget must be >= 8 elements, got {memory_budget}"
        )
    if hasattr(source, "chunks") and hasattr(source, "n"):
        total = int(source.n)
        make_chunks = source.chunks  # type: ignore[union-attr]
    elif isinstance(source, np.ndarray):
        arr = np.asarray(source, dtype=np.float64)
        total = len(arr)
        make_chunks = lambda: iter([arr])  # noqa: E731
    elif callable(source):
        if n is None:
            raise ConfigurationError(
                "a callable source needs the element count n"
            )
        total = int(n)
        make_chunks = source
    else:
        raise ConfigurationError(f"unsupported source {type(source)!r}")
    if total == 0:
        raise EmptySummaryError("cannot select from an empty stream")

    target = min(max(math.ceil(phi * total), 1), total)
    lo, hi = -math.inf, math.inf  # current candidate value window
    window_size = total
    windows: List[int] = []
    peak = 0

    def _eps_for_budget(m: int, window: int) -> float:
        """Smallest (tightest) epsilon whose sketch fits in *m* elements."""
        for eps in (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25):
            if optimal_parameters(eps, max(window, 2)).memory <= m:
                return eps
        return 0.25

    for n_pass in range(1, max_passes + 1):
        if window_size <= memory_budget:
            # final pass: collect the window and select exactly
            kept: List[np.ndarray] = []
            below = 0
            for chunk in make_chunks():
                arr = np.asarray(chunk, dtype=np.float64)
                below += int((arr < lo).sum()) if lo != -math.inf else 0
                inside = arr[(arr >= lo) & (arr <= hi)]
                if len(inside):
                    kept.append(inside)
            retained = int(sum(len(c) for c in kept))
            peak = max(peak, retained)
            if not (below < target <= below + retained):
                raise ConfigurationError(
                    "selection window missed the target rank: the source "
                    "must replay identically on every pass"
                )
            window = np.concatenate(kept)
            window.partition(target - below - 1)
            return MultiPassResult(
                value=float(window[target - below - 1]),
                n=total,
                target_rank=target,
                passes=n_pass,
                windows=tuple(windows),
                peak_memory=max(peak, 1),
            )
        # narrowing pass: sketch only the current window
        eps = _eps_for_budget(memory_budget, window_size)
        sketch = QuantileFramework.from_accuracy(eps, window_size)
        peak = max(peak, sketch.memory_elements)
        seen_in_window = 0
        below = 0
        for chunk in make_chunks():
            arr = np.asarray(chunk, dtype=np.float64)
            if lo != -math.inf:
                below += int((arr < lo).sum())
                arr = arr[(arr >= lo) & (arr <= hi)]
            if len(arr):
                sketch.extend(arr)
                seen_in_window += len(arr)
        # the target's rank within the window
        in_window_target = target - (below if lo != -math.inf else 0)
        phi_w = in_window_target / seen_in_window
        phi_lo = max(phi_w - 2 * eps, 0.0)
        phi_hi = min(phi_w + 2 * eps, 1.0)
        new_lo, new_hi = sketch.quantiles([phi_lo, phi_hi])
        lo, hi = float(min(new_lo, new_hi)), float(max(new_lo, new_hi))
        new_window_size = int(math.ceil(4 * eps * seen_in_window)) + 2
        if new_window_size >= window_size:
            raise ConfigurationError(
                f"memory_budget={memory_budget} is too small to narrow a "
                f"window of {window_size} candidates (best affordable "
                f"eps={eps}); raise the budget"
            )
        window_size = new_window_size
        windows.append(window_size)
    raise ConfigurationError(
        f"did not converge within {max_passes} passes; "
        f"raise memory_budget above {memory_budget}"
    )
