"""Equi-depth histograms from approximate quantiles (Section 1.1).

*"Equidepth histograms, for instance, are simply i/p-quantiles for
i in {1, ..., p-1}, computed over column values of database tables for a
suitable p."*

:class:`EquiDepthHistogram` wraps a set of bucket boundaries -- produced in
one pass by a :class:`~repro.core.sketch.QuantileSketch` -- together with
the rank guarantee they carry, and answers the question query optimisers
ask of histograms: *how many rows fall in this range?*  The error
accounting follows directly from the paper's guarantee: each boundary's
rank is within ``epsilon * N`` of the ideal ``ceil(i N / p)``, so any
range-count estimate is off by at most ``2 epsilon N`` plus the bucket
granularity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.bank import SketchBank
from ..core.errors import ConfigurationError, EmptySummaryError
from ..core.sketch import QuantileSketch

__all__ = ["EquiDepthHistogram", "build_histogram", "build_histograms"]


class EquiDepthHistogram:
    """``p`` equal-count buckets described by ``p - 1`` boundary values.

    Parameters
    ----------
    boundaries:
        The ``i/p``-quantile estimates, ascending (``p - 1`` of them).
    n:
        Number of rows summarised.
    low, high:
        The column's observed min / max (close the outer buckets).
    epsilon:
        The rank guarantee each boundary carries (0 for exact
        histograms), used by :meth:`selectivity_error_bound`.
    """

    def __init__(
        self,
        boundaries: Sequence[float],
        n: int,
        low: float,
        high: float,
        epsilon: float = 0.0,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"histogram over n={n} rows")
        bnd = [float(v) for v in boundaries]
        if any(b2 < b1 for b1, b2 in zip(bnd, bnd[1:])):
            raise ConfigurationError("boundaries must be non-decreasing")
        if bnd and (bnd[0] < low or bnd[-1] > high):
            raise ConfigurationError(
                "boundaries must lie within [low, high]"
            )
        self.boundaries = bnd
        self.n = n
        self.low = float(low)
        self.high = float(high)
        self.epsilon = float(epsilon)

    @property
    def n_buckets(self) -> int:
        return len(self.boundaries) + 1

    @property
    def depth(self) -> float:
        """Ideal rows per bucket (``n / p``)."""
        return self.n / self.n_buckets

    def edges(self) -> List[float]:
        """All ``p + 1`` bucket edges, including the min/max closers."""
        return [self.low] + self.boundaries + [self.high]

    # -- selectivity estimation -------------------------------------------------

    def _rank_of(self, value: float) -> float:
        """Estimated number of rows with column value ``<= value``.

        Piecewise-linear interpolation inside the bucket containing
        *value* -- the standard equi-depth estimator [3].
        """
        edges = self.edges()
        if value < edges[0]:
            return 0.0
        if value >= edges[-1]:
            return float(self.n)
        i = int(np.searchsorted(np.asarray(edges), value, side="right")) - 1
        i = min(max(i, 0), self.n_buckets - 1)
        lo, hi = edges[i], edges[i + 1]
        frac = 0.5 if hi <= lo else (value - lo) / (hi - lo)
        return (i + frac) * self.depth

    def estimate_range_count(self, low: float, high: float) -> float:
        """Estimated number of rows with ``low <= value <= high``."""
        if high < low:
            raise ConfigurationError(f"empty range [{low}, {high}]")
        return max(self._rank_of(high) - self._rank_of(low), 0.0)

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows in ``[low, high]`` (for optimisers)."""
        return self.estimate_range_count(low, high) / self.n

    def selectivity_error_bound(self) -> float:
        """A-priori bound on the selectivity estimate's absolute error.

        Each endpoint's interpolated rank is off by at most one bucket
        depth (``1/p``) plus the boundary's own rank error (``epsilon``);
        a two-endpoint range doubles both.
        """
        return 2.0 * (1.0 / self.n_buckets + self.epsilon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EquiDepthHistogram(p={self.n_buckets}, n={self.n}, "
            f"eps={self.epsilon})"
        )


def build_histogram(
    data: "np.ndarray | Sequence[float]",
    n_buckets: int,
    epsilon: float,
    *,
    policy: str = "new",
    sketch: Optional[QuantileSketch] = None,
) -> EquiDepthHistogram:
    """One-pass equi-depth histogram of *data* with guaranteed boundaries.

    When *sketch* is given it must already contain the data (useful when
    one pass feeds many consumers); otherwise a sketch sized for
    ``(epsilon, len(data))`` is built here.  Min/max are tracked exactly
    (constant extra memory), as any real system would.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1 or len(arr) == 0:
        raise EmptySummaryError("histogram needs a non-empty 1-d column")
    if n_buckets < 2:
        raise ConfigurationError(f"need >= 2 buckets, got {n_buckets}")
    if sketch is None:
        sketch = QuantileSketch(epsilon, n=len(arr), policy=policy)
        sketch.extend(arr)
    boundaries = sketch.equidepth_boundaries(n_buckets)
    boundaries = [float(v) for v in boundaries]
    # quantile estimates are epsilon-approximate, hence individually within
    # the data range, but may locally disorder; sorting restores monotonicity
    # without weakening any individual rank guarantee.
    boundaries.sort()
    return EquiDepthHistogram(
        boundaries,
        n=len(arr),
        low=float(arr.min()),
        high=float(arr.max()),
        epsilon=epsilon,
    )


def build_histograms(
    data: "np.ndarray | Mapping[str, Any]",
    n_buckets: int,
    epsilon: float,
    *,
    columns: Optional[Sequence[str]] = None,
    policy: str = "new",
) -> "Dict[str, EquiDepthHistogram]":
    """Equi-depth histograms for *many* columns from one pass.

    The Section 1.2 motivating workload: *data* is either a 2D
    ``(rows, columns)`` ndarray or a mapping of column name to 1-d
    values, and every column gets its own guaranteed-boundary histogram.
    All summaries live in one :class:`~repro.core.bank.SketchBank` sized
    for ``(epsilon, rows)``, so the boundaries are bit-identical to
    calling :func:`build_histogram` column by column.

    ``columns`` names the ndarray's columns (defaults to ``c0, c1, ...``)
    and is rejected for mappings, whose keys already name the columns.
    """
    if n_buckets < 2:
        raise ConfigurationError(f"need >= 2 buckets, got {n_buckets}")
    if isinstance(data, Mapping):
        if columns is not None:
            raise ConfigurationError(
                "columns= is only for ndarray input; mapping keys "
                "already name the columns"
            )
        names = list(data)
        arrays = [np.asarray(data[name], dtype=np.float64) for name in names]
        if not names:
            raise EmptySummaryError("histograms need at least one column")
        for name, arr in zip(names, arrays):
            if arr.ndim != 1 or len(arr) == 0:
                raise EmptySummaryError(
                    f"histogram needs a non-empty 1-d column, got shape "
                    f"{arr.shape} for {name!r}"
                )
            if len(arr) != len(arrays[0]):
                raise ConfigurationError(
                    f"ragged input: column {name!r} has {len(arr)} rows, "
                    f"expected {len(arrays[0])}"
                )
    else:
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise EmptySummaryError(
                f"histograms need a non-empty 2D (rows, columns) array, "
                f"got shape {matrix.shape}"
            )
        names = (
            [f"c{j}" for j in range(matrix.shape[1])]
            if columns is None
            else list(columns)
        )
        if len(names) != matrix.shape[1]:
            raise ConfigurationError(
                f"{len(names)} column names for {matrix.shape[1]} columns"
            )
        arrays = [matrix[:, j] for j in range(matrix.shape[1])]
    n = len(arrays[0])
    bank = SketchBank(epsilon, n=n, policy=policy, n_sketches=len(names))
    for j, arr in enumerate(arrays):
        bank.extend_single(j, arr)
    phis = [i / n_buckets for i in range(1, n_buckets)]
    out: "Dict[str, EquiDepthHistogram]" = {}
    for j, (name, answers) in enumerate(
        zip(names, bank.quantiles_all(phis))
    ):
        boundaries = sorted(float(v) for v in answers)
        out[name] = EquiDepthHistogram(
            boundaries,
            n=n,
            low=float(arrays[j].min()),
            high=float(arrays[j].max()),
            epsilon=epsilon,
        )
    return out
