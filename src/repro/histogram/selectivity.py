"""Selectivity-estimation experiment harness (the Section 1.1 application).

*"Obtaining an accurate estimate of predicate selectivity is valuable for
query optimization."*  This module closes the loop the introduction
motivates: build an equi-depth histogram from approximate quantiles, issue
range predicates against it, and compare the estimated selectivities with
the truth -- quantifying how boundary rank error translates into
cardinality estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from .equidepth import EquiDepthHistogram

__all__ = ["SelectivityResult", "true_selectivity", "selectivity_experiment"]


def true_selectivity(data: np.ndarray, low: float, high: float) -> float:
    """Exact fraction of values in ``[low, high]``."""
    if high < low:
        raise ConfigurationError(f"empty range [{low}, {high}]")
    arr = np.asarray(data, dtype=np.float64)
    return float(((arr >= low) & (arr <= high)).mean())


@dataclass(frozen=True)
class SelectivityResult:
    """Estimated vs true selectivity for one range predicate."""

    low: float
    high: float
    estimated: float
    true: float

    @property
    def absolute_error(self) -> float:
        return abs(self.estimated - self.true)


def selectivity_experiment(
    data: "np.ndarray | Sequence[float]",
    histogram: EquiDepthHistogram,
    predicates: Optional[Sequence[Tuple[float, float]]] = None,
    *,
    n_predicates: int = 50,
    seed: int = 0,
) -> List[SelectivityResult]:
    """Evaluate *histogram* on range predicates over *data*.

    Without explicit *predicates*, random ranges are drawn between the
    column's min and max (seeded, so experiments are repeatable).  Returns
    one :class:`SelectivityResult` per predicate; the benchmark asserts
    ``max(absolute_error) <= histogram.selectivity_error_bound()``.
    """
    arr = np.asarray(data, dtype=np.float64)
    if predicates is None:
        rng = np.random.default_rng(seed)
        lo, hi = float(arr.min()), float(arr.max())
        a = rng.uniform(lo, hi, n_predicates)
        b = rng.uniform(lo, hi, n_predicates)
        predicates = [
            (min(x, y), max(x, y)) for x, y in zip(a, b)
        ]
    results = []
    for low, high in predicates:
        results.append(
            SelectivityResult(
                low=float(low),
                high=float(high),
                estimated=histogram.selectivity(low, high),
                true=true_selectivity(arr, low, high),
            )
        )
    return results
