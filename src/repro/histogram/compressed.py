"""Compressed histograms: exact heavy hitters + equi-depth for the rest.

Poosala, Ioannidis, Haas & Shekita [3] -- the paper's citation for
"improved histograms for selectivity estimation" -- recommend *compressed*
histograms: store the most frequent values in singleton buckets with exact
counts, and partition only the remaining mass equi-depth.  Skewed columns
get the best of both worlds: the head is exact, and the equi-depth tail is
no longer distorted by it.

This implementation keeps the one-pass discipline: heavy hitters come from
the Misra-Gries frequent-items summary (O(capacity) memory, one pass; any
value with frequency above ``n / capacity`` is guaranteed to be caught),
and the residual distribution comes from an MRL quantile sketch fed in the
same scan.  A short second scan fixes the heavy hitters' exact counts --
the same re-readability the engine's stored tables already provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError
from ..core.sketch import QuantileSketch
from .equidepth import EquiDepthHistogram

__all__ = ["MisraGries", "CompressedHistogram", "build_compressed_histogram"]


class MisraGries:
    """Misra-Gries frequent-items summary (deterministic, one pass).

    With *capacity* counters, every value occurring more than
    ``n / (capacity + 1)`` times is guaranteed to be present at the end;
    reported counts underestimate by at most ``n / (capacity + 1)``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counters: Dict[float, int] = {}
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    def extend(self, data: "np.ndarray | Iterable[float]") -> None:
        arr = np.asarray(data, dtype=np.float64)
        self._n += len(arr)
        counters = self._counters
        # process value runs: group the chunk first (cheap, vectorised)
        values, counts = np.unique(arr, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            if value in counters:
                counters[value] += count
            elif len(counters) < self.capacity:
                counters[value] = count
            else:
                # decrement-all by the run size, bounded by the minimum
                decrement = min(count, min(counters.values()))
                remaining = count - decrement
                for key in list(counters):
                    counters[key] -= decrement
                    if counters[key] <= 0:
                        del counters[key]
                if remaining and len(counters) < self.capacity:
                    counters[value] = remaining

    def candidates(self) -> List[float]:
        """Values that may be heavy hitters (superset of the true ones)."""
        return sorted(self._counters)


@dataclass(frozen=True)
class CompressedHistogram:
    """Singleton buckets for heavy values + equi-depth for the residue."""

    singletons: List[Tuple[float, int]]  #: (value, exact count), sorted
    residual: EquiDepthHistogram  #: equi-depth over non-singleton rows
    n: int
    residual_rows: int = 0  #: genuine rows behind `residual` (0 = none)

    @property
    def n_singletons(self) -> int:
        return len(self.singletons)

    @property
    def memory_elements(self) -> int:
        """Resident summary size: counters + residual boundaries."""
        return 2 * len(self.singletons) + len(self.residual.boundaries) + 2

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows with value in ``[low, high]``."""
        if high < low:
            raise ConfigurationError(f"empty range [{low}, {high}]")
        exact = sum(
            count for value, count in self.singletons if low <= value <= high
        )
        residual_part = (
            self.residual.estimate_range_count(low, high)
            if self.residual_rows
            else 0.0
        )
        return (exact + residual_part) / self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedHistogram(singletons={self.n_singletons}, "
            f"residual_buckets={self.residual.n_buckets}, n={self.n})"
        )


def build_compressed_histogram(
    data: "np.ndarray | Iterable[np.ndarray]",
    n_buckets: int,
    epsilon: float,
    *,
    max_singletons: int = 12,
    policy: str = "new",
) -> CompressedHistogram:
    """Two scans over *data*: sketch + heavy-hitter candidates, then exact
    counts and the residual equi-depth histogram.

    A value becomes a singleton bucket when it alone would overflow an
    equi-depth bucket (count > n / n_buckets) -- the [3] criterion.
    """
    if n_buckets < 2:
        raise ConfigurationError(f"need >= 2 buckets, got {n_buckets}")
    if max_singletons < 1:
        raise ConfigurationError("max_singletons must be >= 1")
    chunks = (
        [np.asarray(data, dtype=np.float64)]
        if isinstance(data, np.ndarray)
        else [np.asarray(c, dtype=np.float64) for c in data]
    )
    n = sum(len(c) for c in chunks)
    if n == 0:
        raise EmptySummaryError("histogram of no data")

    # scan 1: frequent-item candidates (capacity ~4x the needed precision)
    mg = MisraGries(capacity=4 * max_singletons)
    for chunk in chunks:
        mg.extend(chunk)

    # scan 2: exact candidate counts + residual sketch in the same pass
    candidates = np.asarray(mg.candidates(), dtype=np.float64)
    exact_counts = np.zeros(len(candidates), dtype=np.int64)
    residual_sketch = QuantileSketch(epsilon, n=n, policy=policy)
    residual_min, residual_max = np.inf, -np.inf
    residual_n = 0
    for chunk in chunks:
        if len(candidates):
            idx = np.searchsorted(candidates, chunk)
            idx = np.clip(idx, 0, len(candidates) - 1)
            is_candidate = candidates[idx] == chunk
            exact_counts += np.bincount(
                idx[is_candidate], minlength=len(candidates)
            )
            residue = chunk[~is_candidate]
        else:
            residue = chunk
        if len(residue):
            residual_sketch.extend(residue)
            residual_min = min(residual_min, float(residue.min()))
            residual_max = max(residual_max, float(residue.max()))
            residual_n += len(residue)

    threshold = n / n_buckets
    heavy = [
        (float(v), int(c))
        for v, c in zip(candidates, exact_counts)
        if c > threshold
    ]
    heavy.sort(key=lambda vc: -vc[1])
    heavy = sorted(heavy[:max_singletons])

    # rows belonging to rejected candidates return to the residual *counts*
    # (their values were never in the sketch; fold them in approximately by
    # treating them as part of the residual mass at their value point).
    # For the common case -- every true heavy hitter accepted -- this set is
    # small by the Misra-Gries guarantee.
    singleton_values = {v for v, _c in heavy}
    leftover = int(
        sum(c for v, c in zip(candidates, exact_counts)
            if float(v) not in singleton_values)
    )
    residual_rows = residual_n + leftover
    if residual_n == 0:
        # degenerate: every row belongs to a singleton value
        residual = _empty_residual(heavy, epsilon)
        residual_rows = 0
    else:
        boundaries = sorted(
            float(v)
            for v in residual_sketch.equidepth_boundaries(n_buckets)
        )
        residual = EquiDepthHistogram(
            boundaries,
            n=residual_n + leftover,
            low=residual_min,
            high=residual_max,
            epsilon=epsilon,
        )
    return CompressedHistogram(
        singletons=heavy, residual=residual, n=n, residual_rows=residual_rows
    )


def _empty_residual(
    heavy: List[Tuple[float, int]], epsilon: float
) -> EquiDepthHistogram:
    anchor = float(heavy[0][0]) if heavy else 0.0
    return EquiDepthHistogram(
        [], n=1, low=anchor, high=anchor, epsilon=epsilon
    )
