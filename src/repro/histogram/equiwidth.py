"""Equi-width histograms: the comparison point for equi-depth.

The paper motivates equi-depth histograms via Poosala et al. [3], whose
central finding is that equal-*width* buckets (trivial to build: one
min/max pass plus counting) estimate selectivity poorly on skewed data,
because a few buckets absorb most rows.  This module provides the
equi-width estimator with the same interface as
:class:`~repro.histogram.equidepth.EquiDepthHistogram`, so the ablation
bench can put the two head-to-head on skewed columns and reproduce the
reason the quantile-based histogram is worth its extra machinery.

Construction is one streaming pass given the value range (two passes
otherwise -- also streaming); memory is O(buckets).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["EquiWidthHistogram", "build_equiwidth_histogram"]


class EquiWidthHistogram:
    """``p`` equal-width buckets with per-bucket row counts."""

    def __init__(self, low: float, high: float, counts: Sequence[int]) -> None:
        if high < low:
            raise ConfigurationError(f"invalid range [{low}, {high}]")
        if not counts:
            raise ConfigurationError("need at least one bucket")
        self.low = float(low)
        self.high = float(high)
        self.counts = [int(c) for c in counts]
        if any(c < 0 for c in self.counts):
            raise ConfigurationError("bucket counts cannot be negative")
        self.n = sum(self.counts)

    @property
    def n_buckets(self) -> int:
        return len(self.counts)

    @property
    def width(self) -> float:
        span = self.high - self.low
        return span / self.n_buckets if span > 0 else 1.0

    def edges(self) -> List[float]:
        return [
            self.low + i * (self.high - self.low) / self.n_buckets
            for i in range(self.n_buckets + 1)
        ]

    def _rank_of(self, value: float) -> float:
        """Estimated rows with column value <= *value* (linear in-bucket)."""
        if self.n == 0:
            raise EmptySummaryError("histogram holds no rows")
        if value < self.low:
            return 0.0
        if value >= self.high:
            return float(self.n)
        position = (value - self.low) / self.width
        i = min(int(position), self.n_buckets - 1)
        frac = position - i
        return float(sum(self.counts[:i]) + frac * self.counts[i])

    def estimate_range_count(self, low: float, high: float) -> float:
        if high < low:
            raise ConfigurationError(f"empty range [{low}, {high}]")
        return max(self._rank_of(high) - self._rank_of(low), 0.0)

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows in ``[low, high]``."""
        if self.n == 0:
            raise EmptySummaryError("histogram holds no rows")
        return self.estimate_range_count(low, high) / self.n

    def quantile(self, phi: float) -> float:
        """Quantile estimate by linear interpolation within buckets."""
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
        if self.n == 0:
            raise EmptySummaryError("histogram holds no rows")
        target = phi * self.n
        cum = 0.0
        for i, count in enumerate(self.counts):
            if cum + count >= target:
                frac = (target - cum) / count if count else 0.5
                return self.low + (i + frac) * self.width
            cum += count
        return self.high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EquiWidthHistogram(p={self.n_buckets}, n={self.n}, "
            f"range=[{self.low}, {self.high}])"
        )


def build_equiwidth_histogram(
    data: "np.ndarray | Iterable[np.ndarray]",
    n_buckets: int,
    *,
    low: "float | None" = None,
    high: "float | None" = None,
) -> EquiWidthHistogram:
    """Count *data* into ``n_buckets`` equal-width buckets.

    With *low*/*high* given this is a single streaming pass; otherwise the
    range is taken from the materialised data first.
    """
    if n_buckets < 1:
        raise ConfigurationError(f"need >= 1 bucket, got {n_buckets}")
    if isinstance(data, np.ndarray):
        chunks: List[np.ndarray] = [np.asarray(data, dtype=np.float64)]
    else:
        chunks = [np.asarray(c, dtype=np.float64) for c in data]
    if not chunks or all(len(c) == 0 for c in chunks):
        raise EmptySummaryError("histogram of no data")
    if low is None:
        low = min(float(c.min()) for c in chunks if len(c))
    if high is None:
        high = max(float(c.max()) for c in chunks if len(c))
    counts = np.zeros(n_buckets, dtype=np.int64)
    span = high - low
    for chunk in chunks:
        if span > 0:
            idx = ((chunk - low) / span * n_buckets).astype(np.int64)
            idx = np.clip(idx, 0, n_buckets - 1)
        else:
            idx = np.zeros(len(chunk), dtype=np.int64)
        counts += np.bincount(idx, minlength=n_buckets)
    return EquiWidthHistogram(low, high, counts.tolist())
