"""Equi-depth histograms and selectivity estimation (Section 1.1)."""

from .compressed import (
    CompressedHistogram,
    MisraGries,
    build_compressed_histogram,
)
from .equidepth import EquiDepthHistogram, build_histogram, build_histograms
from .equiwidth import EquiWidthHistogram, build_equiwidth_histogram
from .selectivity import (
    SelectivityResult,
    selectivity_experiment,
    true_selectivity,
)

__all__ = [
    "EquiDepthHistogram",
    "build_histogram",
    "build_histograms",
    "CompressedHistogram",
    "MisraGries",
    "build_compressed_histogram",
    "EquiWidthHistogram",
    "build_equiwidth_histogram",
    "SelectivityResult",
    "selectivity_experiment",
    "true_selectivity",
]
