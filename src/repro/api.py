"""The unified public facade: ``repro.Sketch``, ``repro.Bank``,
``repro.connect()``, ``repro.hist()``.

One consistent spelling over the whole library:

- accuracy is ``eps=`` everywhere;
- collapse scheduling is ``policy=`` everywhere;
- the vectorised kernels are toggled per-object with ``kernels=``
  (``None`` follows the global switch; results are bit-identical).

The facade wraps -- it does not replace -- the concrete classes:
:class:`~repro.core.sketch.QuantileSketch`,
:class:`~repro.core.adaptive.AdaptiveQuantileSketch`,
:class:`~repro.core.bank.SketchBank`,
:class:`~repro.core.parallel.ParallelQuantileEngine` and
:class:`~repro.service.client.QuantileClient` all remain importable and
all satisfy the same :class:`~repro.core.protocols.SketchProtocol`
query quartet (``quantile`` / ``quantiles`` / ``cdf`` / ``describe``).

    >>> import repro
    >>> sk = repro.Sketch(eps=0.01)          # adaptive: no N needed
    >>> sk.extend(values)
    >>> sk.quantile(0.5)
    >>> sk.describe()["error_bound_fraction"]

    >>> fixed = repro.Sketch(eps=0.01, n=10**6)   # fixed-N, Table 1 sizing
    >>> bank = repro.Bank(eps=0.01, n_sketches=8) # many summaries, one scan
    >>> with repro.connect("localhost") as c:     # the sharded service
    ...     c.quantile("latency", 0.99)
    >>> repro.hist(values, bins=10, eps=0.005)    # equi-depth boundaries
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Sketch", "Bank", "connect", "hist"]


def Sketch(
    eps: float = 0.01,
    n: Optional[int] = None,
    *,
    policy: str = "new",
    kernels: Optional[bool] = None,
    adaptive: Optional[bool] = None,
    engine: str = "paper",
    **kwargs: Any,
) -> Any:
    """Build a quantile sketch; the facade's one-stop constructor.

    Parameters
    ----------
    eps:
        Rank-accuracy guarantee (every answered ``phi``-quantile has rank
        within ``eps * n`` of the true one).
    n:
        Expected dataset size.  When given, the fixed-N machinery is
        sized optimally for ``(eps, n)`` (Table 1 of the paper); when
        omitted, an :class:`~repro.core.adaptive.AdaptiveQuantileSketch`
        handles unknown-length streams with a certified bound.
    policy:
        Collapse policy: ``"new"`` (default), ``"munro-paterson"`` or
        ``"alsabti-ranka-singh"``.
    kernels:
        Per-sketch override of the vectorised kernels (``None`` follows
        the global switch; results are bit-identical).
    adaptive:
        Force the choice instead of inferring it from *n*: ``True``
        always returns the adaptive sketch, ``False`` always the fixed-N
        one (sized for the library default capacity when *n* is omitted).
    engine:
        Sketch engine (see the docs/api.md selection table):
        ``"paper"`` (default) -- the MRL framework, deterministic
        Lemma 5 bound; ``"kll"`` -- compactor KLL, ~same accuracy in
        less memory with a probabilistic certified bound (takes
        ``delta=``, ``k=``, ``seed=``); ``"frugal"`` -- Frugal-2U,
        1-2 words per tracked fraction, no certified bound (takes
        ``phis=``, ``seed=``).  ``eps``/``n``/``policy`` apply to the
        engines that have those knobs.
    kwargs:
        Forwarded to the concrete constructor (``delta=``, ``seed=``,
        ``offset_mode=``, ``initial_capacity=``, ...).

    Returns the concrete sketch object -- everything it answers is the
    uniform :class:`~repro.core.protocols.SketchProtocol` quartet.
    """
    if engine == "kll":
        from .core.kll import KLLSketch

        return KLLSketch(eps=eps, **kwargs)
    if engine == "frugal":
        from .core.frugal import FrugalSketch

        return FrugalSketch(**kwargs)
    if engine != "paper":
        from .core.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown sketch engine {engine!r}; "
            "choose 'paper', 'kll' or 'frugal'"
        )
    if adaptive is None:
        adaptive = n is None
    if adaptive:
        from .core.adaptive import AdaptiveQuantileSketch

        return AdaptiveQuantileSketch(
            eps=eps, policy=policy, kernels=kernels, **kwargs
        )
    from .core.sketch import QuantileSketch

    return QuantileSketch(
        eps=eps, n=n, policy=policy, kernels=kernels, **kwargs
    )


def Bank(
    eps: float = 0.01,
    n: Optional[int] = None,
    *,
    policy: str = "new",
    kernels: Optional[bool] = None,
    engine: str = "paper",
    **kwargs: Any,
) -> Any:
    """Build a bank: many independent summaries filled by one vectorised
    scan (GROUP BY / multi-column / per-user metrics).

    ``engine="paper"`` (default) returns a
    :class:`~repro.core.bank.SketchBank` -- certified Lemma 5 bounds,
    ~``b*k`` elements per summary.  Accepts the facade kwargs (``eps=``,
    ``policy=``, ``kernels=``) plus everything ``SketchBank`` takes
    (``n_sketches=``, ``max_sketches=``, ``offset_mode=``).

    ``engine="frugal"`` returns a
    :class:`~repro.core.frugal.FrugalBank` -- flat-array Frugal-2U
    state, tens of bytes per summary, one branchless kernel pass per
    ingest chunk (takes ``phis=``, ``n_sketches=``, ``max_sketches=``,
    ``seed=``); this is the 100k+-metric configuration, see
    BENCH_engines.json.  ``eps``/``policy``/``kernels`` do not apply.

    KLL has no vectorised bank (its compaction is per-summary); use
    ``Sketch(engine="kll")`` per summary, or the paper bank.
    """
    if engine == "frugal":
        from .core.frugal import FrugalBank

        return FrugalBank(**kwargs)
    if engine != "paper":
        from .core.errors import ConfigurationError

        raise ConfigurationError(
            f"no bank for engine {engine!r}: choose 'paper' (certified) "
            "or 'frugal' (high-cardinality); KLL is per-sketch only"
        )
    from .core.bank import SketchBank

    return SketchBank(
        eps=eps, n=n, policy=policy, kernels=kernels, **kwargs
    )


def connect(
    host: str = "localhost",
    port: int = 7337,
    **kwargs: Any,
) -> Any:
    """Open a :class:`~repro.service.client.QuantileClient` to a running
    ``repro serve`` instance.

    The client satisfies the same query quartet per named metric:
    ``quantile(name, phi)``, ``quantiles(name, phis)``, ``cdf(name,
    value)``, ``describe(name)``.  Use as a context manager::

        with repro.connect("localhost") as c:
            c.create("latency", epsilon=0.01)
            c.ingest("latency", values)
            c.quantile("latency", 0.99)
    """
    from .service.client import QuantileClient

    return QuantileClient(host, port, **kwargs)


def hist(
    data: "Sequence[float] | Any",
    bins: int = 10,
    *,
    eps: float = 0.005,
    policy: str = "new",
    engine: str = "paper",
) -> List[Any]:
    """Equi-depth histogram boundaries of *data* in one bounded-memory pass.

    Returns the ``i/bins``-quantiles for ``i = 1 .. bins-1`` (Section 1.1
    of the paper: the b-optimal equi-depth histogram).  A convenience
    wrapper over :func:`~repro.core.sketch.approximate_quantiles` --
    or, with ``engine="kll"``/``"frugal"``, over that engine's sketch
    (see :func:`Sketch` for the trade-offs).
    """
    from .core.errors import ConfigurationError

    if bins < 2:
        raise ConfigurationError(f"need at least 2 bins, got {bins}")
    phis = [i / bins for i in range(1, bins)]
    if engine != "paper":
        import numpy as np

        if engine == "frugal":
            # track exactly the requested boundary fractions
            sk = Sketch(engine=engine, phis=tuple(phis))
        else:
            sk = Sketch(eps=eps, engine=engine)
        sk.extend(np.asarray(data, dtype=np.float64))
        return sk.quantiles(phis)
    from .core.sketch import approximate_quantiles

    return approximate_quantiles(data, phis, eps, policy=policy)
