"""The unified public facade: ``repro.Sketch``, ``repro.Bank``,
``repro.connect()``, ``repro.hist()``.

One consistent spelling over the whole library:

- accuracy is ``eps=`` everywhere;
- collapse scheduling is ``policy=`` everywhere;
- the vectorised kernels are toggled per-object with ``kernels=``
  (``None`` follows the global switch; results are bit-identical).

The facade wraps -- it does not replace -- the concrete classes:
:class:`~repro.core.sketch.QuantileSketch`,
:class:`~repro.core.adaptive.AdaptiveQuantileSketch`,
:class:`~repro.core.bank.SketchBank`,
:class:`~repro.core.parallel.ParallelQuantileEngine` and
:class:`~repro.service.client.QuantileClient` all remain importable and
all satisfy the same :class:`~repro.core.protocols.SketchProtocol`
query quartet (``quantile`` / ``quantiles`` / ``cdf`` / ``describe``).

    >>> import repro
    >>> sk = repro.Sketch(eps=0.01)          # adaptive: no N needed
    >>> sk.extend(values)
    >>> sk.quantile(0.5)
    >>> sk.describe()["error_bound_fraction"]

    >>> fixed = repro.Sketch(eps=0.01, n=10**6)   # fixed-N, Table 1 sizing
    >>> bank = repro.Bank(eps=0.01, n_sketches=8) # many summaries, one scan
    >>> with repro.connect("localhost") as c:     # the sharded service
    ...     c.quantile("latency", 0.99)
    >>> repro.hist(values, bins=10, eps=0.005)    # equi-depth boundaries

Time-aware sketches use the same spellings everywhere -- ``window=`` /
``slide=`` / ``decay=`` take seconds or duration strings (``"5m"``),
and mean the same thing on :func:`Sketch`, :func:`hist` and
``connect().create``:

    >>> win = repro.Sketch(eps=0.01, window="5m", slide="1m")
    >>> dec = repro.Sketch(eps=0.01, decay="1h")      # half-life
    >>> with repro.connect("localhost") as c:
    ...     c.create("latency", eps=0.01, window="5m", slide="1m")

``connect(cluster=...)`` points the same call surface at a multi-node
cluster (a ``cluster.json`` manifest path or its directory) and returns
a :class:`~repro.cluster.client.ClusterClient` instead; both clients
satisfy :class:`~repro.core.protocols.ClientProtocol`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Sketch", "Bank", "connect", "hist"]


def Sketch(
    eps: float = 0.01,
    n: Optional[int] = None,
    *,
    policy: str = "new",
    kernels: Optional[bool] = None,
    adaptive: Optional[bool] = None,
    engine: str = "paper",
    window: "str | float | None" = None,
    slide: "str | float | None" = None,
    decay: "str | float | None" = None,
    **kwargs: Any,
) -> Any:
    """Build a quantile sketch; the facade's one-stop constructor.

    Parameters
    ----------
    eps:
        Rank-accuracy guarantee (every answered ``phi``-quantile has rank
        within ``eps * n`` of the true one).
    n:
        Expected dataset size.  When given, the fixed-N machinery is
        sized optimally for ``(eps, n)`` (Table 1 of the paper); when
        omitted, an :class:`~repro.core.adaptive.AdaptiveQuantileSketch`
        handles unknown-length streams with a certified bound.
    policy:
        Collapse policy: ``"new"`` (default), ``"munro-paterson"`` or
        ``"alsabti-ranka-singh"``.
    kernels:
        Per-sketch override of the vectorised kernels (``None`` follows
        the global switch; results are bit-identical).
    adaptive:
        Force the choice instead of inferring it from *n*: ``True``
        always returns the adaptive sketch, ``False`` always the fixed-N
        one (sized for the library default capacity when *n* is omitted).
    engine:
        Sketch engine (see the docs/api.md selection table):
        ``"paper"`` (default) -- the MRL framework, deterministic
        Lemma 5 bound; ``"kll"`` -- compactor KLL, ~same accuracy in
        less memory with a probabilistic certified bound (takes
        ``delta=``, ``k=``, ``seed=``); ``"frugal"`` -- Frugal-2U,
        1-2 words per tracked fraction, no certified bound (takes
        ``phis=``, ``seed=``).  ``eps``/``n``/``policy`` apply to the
        engines that have those knobs.
    window, slide, decay:
        Make the sketch time-aware (seconds, or duration strings like
        ``"5m"``).  ``window=`` returns a
        :class:`~repro.windows.WindowedSketch` over the chosen engine --
        tumbling, or sliding when ``slide`` divides the window evenly;
        ``decay=`` returns a :class:`~repro.windows.ExpDecaySketch`
        with that half-life.  The two are mutually exclusive, and
        ``slide`` requires ``window``.  Both answer the same query
        quartet; batches are stamped with the injected ``clock=``
        (default wall time) or explicitly via ``extend_at(values, t)``.
    kwargs:
        Forwarded to the concrete constructor (``delta=``, ``seed=``,
        ``offset_mode=``, ``initial_capacity=``, ...).

    Returns the concrete sketch object -- everything it answers is the
    uniform :class:`~repro.core.protocols.SketchProtocol` quartet.
    """
    if window is not None or decay is not None:
        from .core.errors import ConfigurationError
        from .windows import ExpDecaySketch, WindowedSketch, window_config

        if kernels is not None or adaptive is not None:
            raise ConfigurationError(
                "kernels=/adaptive= do not apply to windowed or decayed "
                "sketches (buckets size themselves per engine)"
            )
        window_s, slide_s, decay_s = window_config(window, slide, decay)
        if decay_s:
            return ExpDecaySketch(
                eps, half_life=decay_s, engine=engine, policy=policy,
                n=n, **kwargs,
            )
        return WindowedSketch(
            eps, window=window_s, slide=slide_s or None, engine=engine,
            policy=policy, n=n, **kwargs,
        )
    if slide is not None:
        from .windows import window_config

        window_config(window, slide, decay)  # raises: slide needs window
    if engine == "kll":
        from .core.kll import KLLSketch

        return KLLSketch(eps=eps, **kwargs)
    if engine == "frugal":
        from .core.frugal import FrugalSketch

        return FrugalSketch(**kwargs)
    if engine != "paper":
        from .core.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown sketch engine {engine!r}; "
            "choose 'paper', 'kll' or 'frugal'"
        )
    if adaptive is None:
        adaptive = n is None
    if adaptive:
        from .core.adaptive import AdaptiveQuantileSketch

        return AdaptiveQuantileSketch(
            eps=eps, policy=policy, kernels=kernels, **kwargs
        )
    from .core.sketch import QuantileSketch

    return QuantileSketch(
        eps=eps, n=n, policy=policy, kernels=kernels, **kwargs
    )


def Bank(
    eps: float = 0.01,
    n: Optional[int] = None,
    *,
    policy: str = "new",
    kernels: Optional[bool] = None,
    engine: str = "paper",
    **kwargs: Any,
) -> Any:
    """Build a bank: many independent summaries filled by one vectorised
    scan (GROUP BY / multi-column / per-user metrics).

    ``engine="paper"`` (default) returns a
    :class:`~repro.core.bank.SketchBank` -- certified Lemma 5 bounds,
    ~``b*k`` elements per summary.  Accepts the facade kwargs (``eps=``,
    ``policy=``, ``kernels=``) plus everything ``SketchBank`` takes
    (``n_sketches=``, ``max_sketches=``, ``offset_mode=``).

    ``engine="frugal"`` returns a
    :class:`~repro.core.frugal.FrugalBank` -- flat-array Frugal-2U
    state, tens of bytes per summary, one branchless kernel pass per
    ingest chunk (takes ``phis=``, ``n_sketches=``, ``max_sketches=``,
    ``seed=``); this is the 100k+-metric configuration, see
    BENCH_engines.json.  ``eps``/``policy``/``kernels`` do not apply.

    KLL has no vectorised bank (its compaction is per-summary); use
    ``Sketch(engine="kll")`` per summary, or the paper bank.
    """
    if engine == "frugal":
        from .core.frugal import FrugalBank

        return FrugalBank(**kwargs)
    if engine != "paper":
        from .core.errors import ConfigurationError

        raise ConfigurationError(
            f"no bank for engine {engine!r}: choose 'paper' (certified) "
            "or 'frugal' (high-cardinality); KLL is per-sketch only"
        )
    from .core.bank import SketchBank

    return SketchBank(
        eps=eps, n=n, policy=policy, kernels=kernels, **kwargs
    )


def connect(
    host: str = "localhost",
    port: int = 7337,
    *,
    cluster: Optional[str] = None,
    **kwargs: Any,
) -> Any:
    """Open a client to a running service: one server, or a cluster.

    By default returns a
    :class:`~repro.service.client.QuantileClient` for the single server
    at ``host:port``.  With ``cluster=`` (a ``cluster.json`` manifest
    path, or the directory holding one) returns a
    :class:`~repro.cluster.client.ClusterClient` instead --
    consistent-hash routed, replicated, with certified §4.9 fan-in --
    and ``host``/``port`` are ignored.  Both satisfy
    :class:`~repro.core.protocols.ClientProtocol`: the same query
    quartet per named metric (``quantile(name, phi)``,
    ``quantiles(name, phis)``, ``cdf(name, value)``,
    ``describe(name)``), the same ``create``/``ingest`` spellings
    (including ``window=``/``slide=``/``decay=``).  Use as a context
    manager::

        with repro.connect("localhost") as c:
            c.create("latency", eps=0.01, window="5m")
            c.ingest("latency", values)
            c.quantile("latency", 0.99)

        with repro.connect(cluster="./cluster") as c:
            c.quantile("latency", 0.99)
    """
    if cluster is not None:
        from .cluster.client import ClusterClient

        return ClusterClient(cluster, **kwargs)
    from .service.client import QuantileClient

    return QuantileClient(host, port, **kwargs)


def hist(
    data: "Sequence[float] | Any",
    bins: int = 10,
    *,
    eps: float = 0.005,
    policy: str = "new",
    kernels: Optional[bool] = None,
    engine: str = "paper",
    window: "str | float | None" = None,
    slide: "str | float | None" = None,
    decay: "str | float | None" = None,
    **kwargs: Any,
) -> List[Any]:
    """Equi-depth histogram boundaries of *data* in one bounded-memory pass.

    Returns the ``i/bins``-quantiles for ``i = 1 .. bins-1`` (Section 1.1
    of the paper: the b-optimal equi-depth histogram).  A convenience
    wrapper over :func:`~repro.core.sketch.approximate_quantiles` --
    or, with ``engine="kll"``/``"frugal"``, over that engine's sketch
    (see :func:`Sketch` for the trade-offs).

    Accepts the same facade kwargs as :func:`Sketch`: ``kernels=``
    toggles the vectorised paper kernels per call, and
    ``window=``/``slide=``/``decay=`` compute the boundaries over a
    time-aware sketch of *data* (useful with ``extra`` kwargs like
    ``clock=`` when *data* carries event times elsewhere; the batch is
    stamped once at ingest).
    """
    from .core.errors import ConfigurationError

    if bins < 2:
        raise ConfigurationError(f"need at least 2 bins, got {bins}")
    phis = [i / bins for i in range(1, bins)]
    if engine != "paper" or window is not None or decay is not None:
        import numpy as np

        time_kwargs: Any = dict(window=window, slide=slide, decay=decay)
        if engine == "frugal":
            # track exactly the requested boundary fractions
            sk = Sketch(
                engine=engine, phis=tuple(phis), **time_kwargs, **kwargs
            )
        else:
            sk = Sketch(
                eps=eps, policy=policy, engine=engine, **time_kwargs,
                **kwargs,
            )
        sk.extend(np.asarray(data, dtype=np.float64))
        return sk.quantiles(phis)
    if slide is not None:
        from .windows import window_config

        window_config(window, slide, decay)  # raises: slide needs window
    from .core.sketch import approximate_quantiles

    return approximate_quantiles(
        data, phis, eps, policy=policy, **kwargs
    )
