"""The cluster coordinator: launch, supervise and account for N nodes.

Each node is a **complete** :class:`~repro.service.server.QuantileService`
process -- own event loop, own shards, own journal + snapshot pair under
``data_dir/node-<i>`` -- spawned through the same module-level worker
entry point the single-machine :class:`~repro.service.cluster
.ClusterService` uses (``_worker_main``: spawn context, pipe handshake,
SIGTERM = graceful drain).  What the coordinator adds over that class is
*topology*: every node knows its ``node_id`` and the manifest ``epoch``
it was launched under (reported via the ``PING`` opcode), placement is a
consistent-hash ring instead of ``crc32 % N``, and liveness is tracked.

Supervision model -- deliberately *mark-down, don't restart*: a node
that dies stays down for the life of the coordinator.  Restarting it
in-place would resurrect a replica whose journal is missing every batch
acknowledged by its peers since the death; serving queries from it would
silently under-count.  Instead the death is surfaced (manifest status,
``epoch`` bump, Prometheus gauges) and the surviving replicas keep
serving -- re-synchronising a rejoining node is future work (see
docs/cluster.md).  ``poll()`` performs one health sweep; pass
``health_interval_s`` to run sweeps on a background thread.

Observability: the coordinator publishes ``cluster.nodes_up``,
``cluster.nodes_total``, ``cluster.epoch`` gauges and a
``cluster.node_deaths`` counter into the process-wide
:mod:`repro.obs` registry, so :func:`~repro.obs.exposition
.render_prometheus` (and ``repro cluster status --prom``) exposes ring
health next to the sketch metrics.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.errors import StorageError
from ..obs import hooks as obs_hooks
from ..obs.exposition import render_prometheus
from ..service.cluster import _worker_main
from .client import ClusterClient
from .errors import ClusterConfigError
from .manifest import (
    MANIFEST_FILE,
    ClusterManifest,
    NodeSpec,
)
from .ring import DEFAULT_VNODES

__all__ = ["ClusterCoordinator"]


def _node_id(index: int) -> str:
    return f"node-{index}"


class ClusterCoordinator:
    """Launch and supervise a multi-node quantile cluster.

    Parameters
    ----------
    nodes:
        Node count.  Ids are ``node-0`` ... ``node-N-1``.
    replication:
        How many distinct nodes hold each metric's full stream.
    host:
        Bind address for every node.
    base_port:
        ``0`` (default) gives every node an ephemeral port; nonzero
        binds node *i* to ``base_port + i``.
    data_dir:
        Root for the ``cluster.json`` manifest and the per-node
        durability dirs (``node-0`` ...).  ``None`` runs ephemeral (no
        manifest file, no journals) -- benchmarks and tests.
    vnodes:
        Virtual points per node on the hash ring.
    health_interval_s:
        When set, a daemon thread calls :meth:`poll` at this period.
    service_kwargs:
        Forwarded verbatim to every node's ``QuantileService``
        (``n_shards``, ``fsync``, ``batch_window_s``, ...).

    A restart over an existing ``data_dir`` must present the same node
    count, replication and vnodes (placement and replica sets would
    otherwise shift away from the journals on disk -- refused, same
    discipline as ``ClusterService``'s worker pin); the manifest epoch
    increments on every restart and every membership change.
    """

    def __init__(
        self,
        *,
        nodes: int = 3,
        replication: int = 2,
        host: str = "127.0.0.1",
        base_port: int = 0,
        data_dir: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
        health_interval_s: Optional[float] = None,
        **service_kwargs: Any,
    ) -> None:
        if nodes < 1:
            raise ClusterConfigError(f"nodes must be >= 1, got {nodes}")
        if not 1 <= replication <= nodes:
            raise ClusterConfigError(
                f"replication must be in [1, {nodes}], got {replication}"
            )
        self.n_nodes = nodes
        self.replication = replication
        self.host = host
        self.base_port = base_port
        self.data_dir = data_dir
        self.vnodes = vnodes
        self.health_interval_s = health_interval_s
        self.service_kwargs = service_kwargs
        self.manifest: Optional[ClusterManifest] = None
        self.node_deaths = 0
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._health_thread: Optional[threading.Thread] = None
        self._health_stop = threading.Event()
        self._lock = threading.Lock()
        self._stopped = False

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, MANIFEST_FILE)

    def _prior_epoch(self) -> int:
        """Epoch of a previous incarnation (0 if none), with the restart
        pinned to the same topology parameters."""
        path = self.manifest_path
        if path is None or not os.path.exists(path):
            return 0
        prior = ClusterManifest.load(path)
        if len(prior.nodes) != self.n_nodes:
            raise ClusterConfigError(
                f"{self.data_dir} was written by a {len(prior.nodes)}-node "
                f"cluster; restarting with nodes={self.n_nodes} would "
                f"re-route metrics away from their journals"
            )
        if prior.replication != self.replication:
            raise ClusterConfigError(
                f"{self.data_dir} was written with replication="
                f"{prior.replication}; restarting with replication="
                f"{self.replication} would change every replica set"
            )
        if prior.vnodes != self.vnodes:
            raise ClusterConfigError(
                f"{self.data_dir} was written with vnodes={prior.vnodes}; "
                f"restarting with vnodes={self.vnodes} would shift "
                f"placement away from the journals"
            )
        return prior.epoch

    def _save_manifest(self) -> None:
        if self.manifest is None:
            return
        path = self.manifest_path
        if path is not None:
            self.manifest.save(path)

    # -- lifecycle ---------------------------------------------------------

    def start(self, timeout: float = 30.0) -> "ClusterCoordinator":
        if self.data_dir is not None:
            os.makedirs(self.data_dir, exist_ok=True)
        epoch = self._prior_epoch() + 1
        ctx = multiprocessing.get_context("spawn")
        pending: List[Tuple[str, Any]] = []
        specs: List[NodeSpec] = []
        for i in range(self.n_nodes):
            nid = _node_id(i)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                name=f"repro-{nid}",
                args=(
                    i,
                    self.host,
                    0 if self.base_port == 0 else self.base_port + i,
                    (
                        os.path.join(self.data_dir, nid)
                        if self.data_dir is not None
                        else None
                    ),
                    child_conn,
                    {
                        **self.service_kwargs,
                        "node_id": nid,
                        "cluster_epoch": epoch,
                    },
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs[nid] = proc
            pending.append((nid, parent_conn))
            specs.append(NodeSpec(id=nid, host=self.host, port=0))
        deadline = time.monotonic() + timeout
        try:
            for (nid, parent_conn), spec in zip(pending, specs):
                budget = deadline - time.monotonic()
                if budget <= 0 or not parent_conn.poll(max(budget, 0.0)):
                    raise StorageError(
                        f"{nid} failed to start within {timeout}s"
                    )
                try:
                    status, value = parent_conn.recv()
                except EOFError:
                    code = self._procs[nid].exitcode
                    raise StorageError(
                        f"{nid} died during startup (exit code {code})"
                    ) from None
                if status != "ready":
                    raise StorageError(f"{nid} failed to start: {value}")
                spec.port = int(value)
                parent_conn.close()
        except BaseException:
            self.stop(graceful=False)
            raise
        self.manifest = ClusterManifest(
            nodes=specs,
            replication=self.replication,
            vnodes=self.vnodes,
            epoch=epoch,
        )
        self._save_manifest()
        self._publish_obs()
        if self.health_interval_s:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name="repro-cluster-health",
                daemon=True,
            )
            self._health_thread.start()
        return self

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """SIGTERM (graceful drain + final snapshot) or SIGKILL every node."""
        if self._stopped:
            return
        self._stopped = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for proc in self._procs.values():
            if not proc.is_alive():
                continue
            if graceful:
                proc.terminate()
            else:
                proc.kill()
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            proc.join(max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():  # pragma: no cover - drain overran
                proc.kill()
                proc.join(5.0)
        self._procs = {}

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- accessors ---------------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        return [_node_id(i) for i in range(self.n_nodes)]

    @property
    def ports(self) -> List[int]:
        assert self.manifest is not None, "call start() first"
        return [spec.port for spec in self.manifest.nodes]

    @property
    def epoch(self) -> int:
        return self.manifest.epoch if self.manifest is not None else 0

    def live_ids(self) -> List[str]:
        assert self.manifest is not None, "call start() first"
        return self.manifest.live_ids()

    def is_alive(self, node: Union[int, str]) -> bool:
        proc = self._procs.get(self._resolve(node))
        return proc is not None and proc.is_alive()

    def client(self, **client_kwargs: Any) -> ClusterClient:
        """A :class:`ClusterClient` over this cluster's manifest."""
        assert self.manifest is not None, "call start() first"
        return ClusterClient(self.manifest, **client_kwargs)

    def _resolve(self, node: Union[int, str]) -> str:
        return _node_id(node) if isinstance(node, int) else node

    # -- supervision -------------------------------------------------------

    def kill_node(self, node: Union[int, str]) -> str:
        """SIGKILL one node (the chaos-test hook); returns its id.

        The kill is immediate and ungraceful -- no drain, no final
        snapshot -- exactly what the crash-recovery story is built for.
        Detection happens at the next :meth:`poll`.
        """
        nid = self._resolve(node)
        proc = self._procs.get(nid)
        if proc is None:
            raise ClusterConfigError(f"unknown node {nid!r}")
        if proc.is_alive():
            proc.kill()
            proc.join(10.0)
        return nid

    def poll(self) -> List[str]:
        """One health sweep; returns ids of *newly* dead nodes.

        Every death marks the node ``down`` in the manifest, bumps the
        epoch once per sweep, rewrites ``cluster.json`` atomically and
        refreshes the Prometheus gauges.  Clients pick the change up by
        reloading the manifest (or are already skipping the node via
        their own connection-failure marking).
        """
        assert self.manifest is not None, "call start() first"
        with self._lock:
            newly_dead: List[str] = []
            for spec in self.manifest.nodes:
                if spec.status == "up" and not self.is_alive(spec.id):
                    self.manifest.mark(spec.id, "down")
                    newly_dead.append(spec.id)
            if newly_dead:
                self.node_deaths += len(newly_dead)
                self.manifest.epoch += 1
                self._save_manifest()
            self._publish_obs()
            return newly_dead

    def _health_loop(self) -> None:
        assert self.health_interval_s is not None
        while not self._health_stop.wait(self.health_interval_s):
            try:
                self.poll()
            except Exception:  # pragma: no cover - keep sweeping
                pass

    # -- observability -----------------------------------------------------

    def _publish_obs(self) -> None:
        reg = obs_hooks.registry()
        n_up = len(self.manifest.live_ids()) if self.manifest else 0
        reg.gauge("cluster.nodes_up").set(n_up)
        reg.gauge("cluster.nodes_total").set(self.n_nodes)
        reg.gauge("cluster.replication").set(self.replication)
        reg.gauge("cluster.epoch").set(self.epoch)
        deaths = reg.counter("cluster.node_deaths")
        behind = self.node_deaths - int(deaths.get())
        if behind > 0:
            deaths.inc(behind)

    def prometheus(self) -> str:
        """Ring health (+ whatever else the process collected) in
        Prometheus text format."""
        self._publish_obs()
        return render_prometheus(obs_hooks.registry())
