"""The cluster coordinator: launch, supervise and account for N nodes.

Each node is a **complete** :class:`~repro.service.server.QuantileService`
process -- own event loop, own shards, own journal + snapshot pair under
``data_dir/node-<i>`` -- spawned through the same module-level worker
entry point the single-machine :class:`~repro.service.cluster
.ClusterService` uses (``_worker_main``: spawn context, pipe handshake,
SIGTERM = graceful drain).  What the coordinator adds over that class is
*topology*: every node knows its ``node_id`` and the manifest ``epoch``
it was launched under (reported via the ``PING`` opcode), placement is a
consistent-hash ring instead of ``crc32 % N``, and liveness is tracked.

Supervision model -- *mark down, re-sync before rejoining*: a node that
dies is marked ``down`` (manifest status, ``epoch`` bump, Prometheus
gauges) and never silently restarted, because its journal is missing
every batch its peers acknowledged since the death -- serving from it
would under-count.  Recovery is explicit: :meth:`restart_node`
relaunches the process, which rejoins as ``syncing`` (alive, routed
around for reads) and is brought up to its senior donor's exact state
by :meth:`resync_node` -- full-payload install + journal-tail catch-up
under the donors' idempotency tokens, verified **bit-identical** before
the flip to ``up`` (see :mod:`repro.cluster.sync`).  Planned membership
changes go through :meth:`add_node` / :meth:`remove_node`, which
compute the ring's ownership delta and migrate only the moved metrics
(expected ``~R/N`` of keys) while ingest continues.  ``poll()``
performs one health sweep; pass ``health_interval_s`` to run sweeps on
a background thread.

Observability: the coordinator publishes ``cluster.nodes_up``,
``cluster.nodes_syncing``, ``cluster.nodes_total``, ``cluster.epoch``
gauges and ``cluster.node_deaths`` / ``cluster.resyncs`` /
``cluster.rebalance_transfers`` counters into the process-wide
:mod:`repro.obs` registry (the sync driver adds live
``cluster.sync_metrics_total`` / ``_done`` progress gauges), so
:func:`~repro.obs.exposition.render_prometheus` (and ``repro cluster
status --prom``) exposes ring health next to the sketch metrics.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.errors import StorageError
from ..obs import hooks as obs_hooks
from ..obs.exposition import render_prometheus
from ..service.cluster import _worker_main
from .client import ClusterClient
from .errors import ClusterConfigError, ClusterSyncError
from .manifest import (
    MANIFEST_FILE,
    ClusterManifest,
    NodeSpec,
)
from .ring import DEFAULT_VNODES, HashRing, ownership_delta
from .sync import NodeSyncReport, SyncDriver, delta_donor

__all__ = ["ClusterCoordinator"]


def _node_id(index: int) -> str:
    return f"node-{index}"


def _node_index(node_id: str) -> int:
    try:
        return int(node_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        raise ClusterConfigError(
            f"node id {node_id!r} is not of the form 'node-<i>'"
        ) from None


class ClusterCoordinator:
    """Launch and supervise a multi-node quantile cluster.

    Parameters
    ----------
    nodes:
        Node count.  Ids are ``node-0`` ... ``node-N-1``.
    replication:
        How many distinct nodes hold each metric's full stream.
    host:
        Bind address for every node.
    base_port:
        ``0`` (default) gives every node an ephemeral port; nonzero
        binds node *i* to ``base_port + i``.
    data_dir:
        Root for the ``cluster.json`` manifest and the per-node
        durability dirs (``node-0`` ...).  ``None`` runs ephemeral (no
        manifest file, no journals) -- benchmarks and tests.
    vnodes:
        Virtual points per node on the hash ring.
    health_interval_s:
        When set, a daemon thread calls :meth:`poll` at this period.
    service_kwargs:
        Forwarded verbatim to every node's ``QuantileService``
        (``n_shards``, ``fsync``, ``batch_window_s``, ...).

    A restart over an existing ``data_dir`` must present the same node
    count, replication and vnodes (placement and replica sets would
    otherwise shift away from the journals on disk -- refused, same
    discipline as ``ClusterService``'s worker pin); the manifest epoch
    increments on every restart and every membership change.
    """

    def __init__(
        self,
        *,
        nodes: int = 3,
        replication: int = 2,
        host: str = "127.0.0.1",
        base_port: int = 0,
        data_dir: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
        health_interval_s: Optional[float] = None,
        auto_resync: bool = True,
        **service_kwargs: Any,
    ) -> None:
        if nodes < 1:
            raise ClusterConfigError(f"nodes must be >= 1, got {nodes}")
        if not 1 <= replication <= nodes:
            raise ClusterConfigError(
                f"replication must be in [1, {nodes}], got {replication}"
            )
        self.n_nodes = nodes
        self.replication = replication
        self.host = host
        self.base_port = base_port
        self.data_dir = data_dir
        self.vnodes = vnodes
        self.health_interval_s = health_interval_s
        self.auto_resync = auto_resync
        self.service_kwargs = service_kwargs
        self.manifest: Optional[ClusterManifest] = None
        self.node_deaths = 0
        self.resyncs = 0
        self.rebalance_transfers = 0
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._health_thread: Optional[threading.Thread] = None
        self._health_stop = threading.Event()
        self._lock = threading.Lock()
        self._stopped = False

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, MANIFEST_FILE)

    def _prior_manifest(self) -> Optional[ClusterManifest]:
        """The manifest of a previous incarnation, with the restart
        pinned to the same topology parameters.

        The prior manifest's node *list* wins over the constructor's
        ``nodes`` count-derived ids: after a planned ``remove-node`` the
        ids may be sparse (``node-0``, ``node-2``), and re-deriving them
        from ``range(n)`` would re-route metrics away from their
        journals.  The count must still agree, as must replication and
        vnodes -- membership changes go through :meth:`add_node` /
        :meth:`remove_node`, never through restart parameters.
        """
        path = self.manifest_path
        if path is None or not os.path.exists(path):
            return None
        prior = ClusterManifest.load(path)
        if len(prior.nodes) != self.n_nodes:
            raise ClusterConfigError(
                f"{self.data_dir} was written by a {len(prior.nodes)}-node "
                f"cluster; restarting with nodes={self.n_nodes} would "
                f"re-route metrics away from their journals (use "
                f"add_node/remove_node for planned membership changes)"
            )
        if prior.replication != self.replication:
            raise ClusterConfigError(
                f"{self.data_dir} was written with replication="
                f"{prior.replication}; restarting with replication="
                f"{self.replication} would change every replica set"
            )
        if prior.vnodes != self.vnodes:
            raise ClusterConfigError(
                f"{self.data_dir} was written with vnodes={prior.vnodes}; "
                f"restarting with vnodes={self.vnodes} would shift "
                f"placement away from the journals"
            )
        return prior

    def _save_manifest(self) -> None:
        if self.manifest is None:
            return
        path = self.manifest_path
        if path is not None:
            self.manifest.save(path)

    # -- lifecycle ---------------------------------------------------------

    def _launch(
        self, nid: str, epoch: int, ctx: Any = None
    ) -> Tuple[Any, Any]:
        """Spawn one node process; returns ``(proc, parent_conn)``.

        The handshake (``("ready", port)`` on the pipe) is collected by
        :meth:`_await_ready` -- split so :meth:`start` can launch every
        node before waiting on any of them.
        """
        if ctx is None:
            ctx = multiprocessing.get_context("spawn")
        index = _node_index(nid)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            name=f"repro-{nid}",
            args=(
                index,
                self.host,
                0 if self.base_port == 0 else self.base_port + index,
                (
                    os.path.join(self.data_dir, nid)
                    if self.data_dir is not None
                    else None
                ),
                child_conn,
                {
                    **self.service_kwargs,
                    "node_id": nid,
                    "cluster_epoch": epoch,
                },
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[nid] = proc
        return proc, parent_conn

    def _await_ready(
        self, nid: str, parent_conn: Any, deadline: float
    ) -> int:
        """Collect one node's startup handshake; returns its bound port."""
        budget = deadline - time.monotonic()
        if budget <= 0 or not parent_conn.poll(max(budget, 0.0)):
            raise StorageError(f"{nid} failed to start in time")
        try:
            status, value = parent_conn.recv()
        except EOFError:
            code = self._procs[nid].exitcode
            raise StorageError(
                f"{nid} died during startup (exit code {code})"
            ) from None
        if status != "ready":
            raise StorageError(f"{nid} failed to start: {value}")
        parent_conn.close()
        return int(value)

    def start(self, timeout: float = 30.0) -> "ClusterCoordinator":
        if self.data_dir is not None:
            os.makedirs(self.data_dir, exist_ok=True)
        prior = self._prior_manifest()
        epoch = (prior.epoch if prior is not None else 0) + 1
        # the prior manifest's node list wins (ids may be sparse after a
        # remove-node); a fresh cluster derives node-0..node-N-1
        if prior is not None:
            planned = [(spec.id, spec.status) for spec in prior.nodes]
        else:
            planned = [(_node_id(i), "up") for i in range(self.n_nodes)]
        ctx = multiprocessing.get_context("spawn")
        pending: List[Tuple[str, Any]] = []
        specs: List[NodeSpec] = []
        behind: List[str] = []
        for nid, prior_status in planned:
            _, parent_conn = self._launch(nid, epoch, ctx)
            pending.append((nid, parent_conn))
            # a node that was down or mid-sync at shutdown restarts
            # *behind* its peers: its journal stopped while theirs kept
            # going.  It comes back as "syncing" and must re-sync before
            # serving reads.
            status = "up" if prior_status == "up" else "syncing"
            if status != "up":
                behind.append(nid)
            specs.append(
                NodeSpec(id=nid, host=self.host, port=0, status=status)
            )
        deadline = time.monotonic() + timeout
        try:
            for (nid, parent_conn), spec in zip(pending, specs):
                spec.port = self._await_ready(nid, parent_conn, deadline)
        except BaseException:
            self.stop(graceful=False)
            raise
        self.manifest = ClusterManifest(
            nodes=specs,
            replication=self.replication,
            vnodes=self.vnodes,
            epoch=epoch,
        )
        self._save_manifest()
        self._publish_obs()
        if behind and self.auto_resync:
            for nid in behind:
                self.resync_node(nid)
        if self.health_interval_s:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name="repro-cluster-health",
                daemon=True,
            )
            self._health_thread.start()
        return self

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """SIGTERM (graceful drain + final snapshot) or SIGKILL every node."""
        if self._stopped:
            return
        self._stopped = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for proc in self._procs.values():
            if not proc.is_alive():
                continue
            if graceful:
                proc.terminate()
            else:
                proc.kill()
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            proc.join(max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():  # pragma: no cover - drain overran
                proc.kill()
                proc.join(5.0)
        self._procs = {}

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- accessors ---------------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        if self.manifest is not None:
            return self.manifest.node_ids()
        return [_node_id(i) for i in range(self.n_nodes)]

    @property
    def ports(self) -> List[int]:
        assert self.manifest is not None, "call start() first"
        return [spec.port for spec in self.manifest.nodes]

    @property
    def epoch(self) -> int:
        return self.manifest.epoch if self.manifest is not None else 0

    def live_ids(self) -> List[str]:
        assert self.manifest is not None, "call start() first"
        return self.manifest.live_ids()

    def is_alive(self, node: Union[int, str]) -> bool:
        proc = self._procs.get(self._resolve(node))
        return proc is not None and proc.is_alive()

    def client(self, **client_kwargs: Any) -> ClusterClient:
        """A :class:`ClusterClient` over this cluster's manifest."""
        assert self.manifest is not None, "call start() first"
        return ClusterClient(self.manifest, **client_kwargs)

    def _resolve(self, node: Union[int, str]) -> str:
        return _node_id(node) if isinstance(node, int) else node

    # -- supervision -------------------------------------------------------

    def kill_node(self, node: Union[int, str]) -> str:
        """SIGKILL one node (the chaos-test hook); returns its id.

        The kill is immediate and ungraceful -- no drain, no final
        snapshot -- exactly what the crash-recovery story is built for.
        Detection happens at the next :meth:`poll`.
        """
        nid = self._resolve(node)
        proc = self._procs.get(nid)
        if proc is None:
            raise ClusterConfigError(f"unknown node {nid!r}")
        if proc.is_alive():
            proc.kill()
            proc.join(10.0)
        return nid

    # -- recovery + membership ---------------------------------------------

    def _sync_driver(self, **kwargs: Any) -> SyncDriver:
        assert self.manifest is not None, "call start() first"
        return SyncDriver(self.manifest, **kwargs)

    def restart_node(
        self,
        node: Union[int, str],
        *,
        resync: bool = True,
        timeout: float = 30.0,
    ) -> str:
        """Relaunch a dead node in place, then re-sync it from its peers.

        The relaunch recovers whatever the node's own journal holds --
        which is every batch *it* acknowledged, and none of the ones its
        replicas took while it was dead.  It therefore rejoins as
        ``syncing`` (behind, routed around for reads) and, unless
        ``resync=False``, is immediately brought up to donor state and
        flipped ``up`` by :meth:`resync_node`.
        """
        assert self.manifest is not None, "call start() first"
        nid = self._resolve(node)
        spec = self.manifest.node(nid)  # raises on unknown id
        if self.is_alive(nid):
            raise ClusterConfigError(
                f"{nid} is still running; kill it before restarting"
            )
        with self._lock:
            self._procs.pop(nid, None)
            _, parent_conn = self._launch(nid, self.manifest.epoch + 1)
            spec.port = self._await_ready(
                nid, parent_conn, time.monotonic() + timeout
            )
            spec.status = "syncing"
            self.manifest.epoch += 1
            self._save_manifest()
            self._publish_obs()
        if resync:
            self.resync_node(nid)
        return nid

    def resync_node(
        self,
        node: Union[int, str],
        *,
        max_rounds: int = 64,
        closing_pass: bool = True,
    ) -> NodeSyncReport:
        """Supervised re-sync: stream state from donors, verify, flip up.

        Marks the node ``syncing`` (one epoch bump), runs the
        :class:`~repro.cluster.sync.SyncDriver` until every owned metric
        verifies bit-identical against its senior donor, then marks the
        node ``up`` (second epoch bump).  With ``closing_pass`` (the
        default) one more non-verifying pass runs *after* the flip to
        absorb any batches that clients routed to the donors alone while
        their manifest view was stale -- the tail records carry the
        donors' idempotency tokens, so the pass is exactly-once no
        matter how it interleaves with direct writes.
        """
        assert self.manifest is not None, "call start() first"
        nid = self._resolve(node)
        if not self.is_alive(nid):
            raise ClusterSyncError(
                f"cannot re-sync {nid}: the node is not running "
                f"(restart_node relaunches it first)"
            )
        with self._lock:
            if self.manifest.mark(nid, "syncing"):
                self.manifest.epoch += 1
                self._save_manifest()
            self._publish_obs()
        ring = self.manifest.ring()
        live = set(self.manifest.live_ids())
        with self._sync_driver(max_rounds=max_rounds) as driver:
            report = driver.resync_node(
                nid,
                ring=ring,
                replication=self.replication,
                live=live,
                require_identity=True,
            )
            with self._lock:
                self.manifest.mark(nid, "up")
                self.manifest.epoch += 1
                self.resyncs += 1
                self._save_manifest()
                self._publish_obs()
            if closing_pass and report.synced:
                driver.resync_node(
                    nid,
                    ring=ring,
                    replication=self.replication,
                    live=live,
                    metrics=[m.name for m in report.synced],
                    require_identity=False,
                )
        return report

    def add_node(self, *, timeout: float = 30.0) -> str:
        """Grow the cluster by one node, migrating only the moved keys.

        Launches ``node-<max index + 1>``, joins it to the manifest as
        ``syncing`` (its ring points shift placement immediately, but
        reads route around it), computes the ownership delta against the
        pre-join ring, and streams exactly the gained metrics -- the
        ring's minimal-movement guarantee, expected ``~R/N`` of keys --
        from their senior pre-join owners.  Every other metric gets its
        definition only (the CREATE broadcast invariant).  The node
        flips ``up`` once every transfer verifies bit-identical, and a
        closing pass absorbs writes from stale-manifest clients.
        Returns the new node id.
        """
        assert self.manifest is not None, "call start() first"
        with self._lock:
            nid = _node_id(
                max(_node_index(s.id) for s in self.manifest.nodes) + 1
            )
            ring_before = self.manifest.ring()
            live = set(self.manifest.live_ids())
            _, parent_conn = self._launch(nid, self.manifest.epoch + 1)
            port = self._await_ready(
                nid, parent_conn, time.monotonic() + timeout
            )
            self.manifest.nodes.append(
                NodeSpec(id=nid, host=self.host, port=port, status="syncing")
            )
            self.n_nodes += 1
            self.manifest.epoch += 1
            self._save_manifest()
            self._publish_obs()
        ring_after = self.manifest.ring()
        with self._sync_driver() as driver:
            names = driver.metric_names(sorted(live))
            delta = ownership_delta(
                ring_before, ring_after, names, self.replication
            )
            moved: set = set()
            for key, gainer in delta.transfers():
                donor = delta_donor(
                    key, gainer, ring_before, self.replication, live
                )
                driver.sync_metric(key, donor, gainer)
                if gainer == nid:
                    moved.add(key)
            for name in names:
                if name not in moved and live:
                    driver.define_metric(name, sorted(live)[0], nid)
            with self._lock:
                self.manifest.mark(nid, "up")
                self.manifest.epoch += 1
                self.rebalance_transfers += len(delta.moved)
                self._save_manifest()
                self._publish_obs()
            if moved:
                driver.resync_node(
                    nid,
                    ring=ring_after,
                    replication=self.replication,
                    live=live,
                    metrics=sorted(moved),
                    require_identity=False,
                )
        return nid

    def remove_node(
        self, node: Union[int, str], *, timeout: float = 30.0
    ) -> List[str]:
        """Shrink the cluster by one node, migrating only the moved keys.

        Streams each metric the leaving node exclusively anchors to its
        post-removal owner (the leaving node itself donates when it is
        the senior copy -- it stays up throughout the migration), then
        removes it from the manifest, runs a closing pass from the
        leaving node to absorb stale-manifest writes, and only then
        terminates the process gracefully.  Returns the migrated metric
        names.
        """
        assert self.manifest is not None, "call start() first"
        nid = self._resolve(node)
        spec = self.manifest.node(nid)  # raises on unknown id
        if len(self.manifest.nodes) - 1 < self.replication:
            raise ClusterConfigError(
                f"removing {nid} would leave "
                f"{len(self.manifest.nodes) - 1} node(s), fewer than "
                f"replication={self.replication}"
            )
        ring_before = self.manifest.ring()
        surviving = [s.id for s in self.manifest.nodes if s.id != nid]
        ring_after = HashRing(surviving, vnodes=self.vnodes)
        live = set(self.manifest.live_ids())
        with self._sync_driver() as driver:
            names = driver.metric_names(sorted(live)) if live else []
            delta = ownership_delta(
                ring_before, ring_after, names, self.replication
            )
            transfers = delta.transfers()
            for key, gainer in transfers:
                donor = delta_donor(
                    key, gainer, ring_before, self.replication, live
                )
                driver.sync_metric(key, donor, gainer)
            if spec.status == "up" and self.is_alive(nid):
                # cache the leaving node's connection now: its manifest
                # entry disappears below, but the closing pass still
                # drains its journal
                driver.client(nid)
            with self._lock:
                self.manifest.nodes.remove(spec)
                self.n_nodes -= 1
                self.manifest.epoch += 1
                self.rebalance_transfers += len(delta.moved)
                self._save_manifest()
                self._publish_obs()
            # closing pass: batches that stale-manifest clients routed
            # to the leaving node after the verified transfer still sit
            # only in its journal -- drain them to the gainers before
            # the process goes away (donor tokens keep it exactly-once)
            if spec.status == "up" and self.is_alive(nid):
                for key, gainer in transfers:
                    driver.sync_metric(
                        key, nid, gainer, require_identity=False
                    )
        proc = self._procs.pop(nid, None)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout)
            if proc.is_alive():  # pragma: no cover - drain overran
                proc.kill()
                proc.join(5.0)
        return [key for key, _ in transfers]

    def poll(self) -> List[str]:
        """One health sweep; returns ids of *newly* dead nodes.

        Every death marks the node ``down`` in the manifest, bumps the
        epoch once per sweep, rewrites ``cluster.json`` atomically and
        refreshes the Prometheus gauges.  Clients pick the change up by
        reloading the manifest (or are already skipping the node via
        their own connection-failure marking).
        """
        assert self.manifest is not None, "call start() first"
        with self._lock:
            newly_dead: List[str] = []
            for spec in self.manifest.nodes:
                if spec.status in ("up", "syncing") and not self.is_alive(
                    spec.id
                ):
                    self.manifest.mark(spec.id, "down")
                    newly_dead.append(spec.id)
            if newly_dead:
                self.node_deaths += len(newly_dead)
                self.manifest.epoch += 1
                self._save_manifest()
            self._publish_obs()
            return newly_dead

    def _health_loop(self) -> None:
        assert self.health_interval_s is not None
        while not self._health_stop.wait(self.health_interval_s):
            try:
                self.poll()
            except Exception:  # pragma: no cover - keep sweeping
                pass

    # -- observability -----------------------------------------------------

    def _publish_obs(self) -> None:
        reg = obs_hooks.registry()
        n_up = len(self.manifest.live_ids()) if self.manifest else 0
        n_syncing = len(self.manifest.syncing_ids()) if self.manifest else 0
        n_total = len(self.manifest.nodes) if self.manifest else self.n_nodes
        reg.gauge("cluster.nodes_up").set(n_up)
        reg.gauge("cluster.nodes_syncing").set(n_syncing)
        reg.gauge("cluster.nodes_total").set(n_total)
        reg.gauge("cluster.replication").set(self.replication)
        reg.gauge("cluster.epoch").set(self.epoch)
        for name, value in (
            ("cluster.node_deaths", self.node_deaths),
            ("cluster.resyncs", self.resyncs),
            ("cluster.rebalance_transfers", self.rebalance_transfers),
        ):
            counter = reg.counter(name)
            behind = value - int(counter.get())
            if behind > 0:
                counter.inc(behind)

    def prometheus(self) -> str:
        """Ring health (+ whatever else the process collected) in
        Prometheus text format."""
        self._publish_obs()
        return render_prometheus(obs_hooks.registry())
