"""Typed errors for the multi-node cluster layer.

Everything roots at :class:`~repro.core.errors.ReproError`, same as the
rest of the library, so ``except ReproError`` at a boundary still
catches cluster failures.  Two distinctions matter to callers:

* :class:`NodeUnavailableError` -- *every* replica that could answer is
  down.  Also a :class:`ConnectionError`, so retry loops written against
  the service client's transport errors treat it the same way.
* :class:`ReplicaEngineMismatchError` -- replicas of one metric (or
  payloads in one fan-in) disagree on sketch engine.  A subclass of
  :class:`~repro.core.errors.EngineMismatchError`, but the message names
  each node and its engine tag, so the operator knows *which* node to
  fix instead of just that one exists.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.errors import EngineMismatchError, ReproError

__all__ = [
    "ClusterError",
    "ClusterConfigError",
    "ClusterSyncError",
    "NodeUnavailableError",
    "ReplicaEngineMismatchError",
]


class ClusterError(ReproError):
    """Base class for cluster-layer failures."""


class ClusterConfigError(ClusterError, ValueError):
    """Invalid cluster topology, manifest or restart parameters."""


class ClusterSyncError(ClusterError):
    """A node re-sync failed: no donor, divergent state after catch-up,
    or the round limit was reached before the target converged on a
    bit-identical copy of the donor."""


class NodeUnavailableError(ClusterError, ConnectionError):
    """No live replica can serve the request (all owners are down)."""


class ReplicaEngineMismatchError(EngineMismatchError):
    """Replicas of the same metric answered with different engine tags.

    Carries ``(node_id, engine)`` pairs and a message that names each
    offender, e.g.::

        replicas of 'api/latency' disagree on sketch engine:
        node-0=paper, node-2=kll; re-create the metric with one engine
        everywhere before merging

    ``tagged`` preserves the raw pairs for programmatic handling.
    """

    def __init__(
        self, metric: str, tagged: Sequence[Tuple[str, str]]
    ) -> None:
        self.metric = metric
        self.tagged = list(tagged)
        detail = ", ".join(f"{node}={eng}" for node, eng in self.tagged)
        super().__init__(
            f"replicas of {metric!r} disagree on sketch engine: {detail}; "
            f"re-create the metric with one engine everywhere before "
            f"merging"
        )
