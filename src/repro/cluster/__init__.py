"""repro.cluster -- the multi-node quantile cluster.

A new layer over :mod:`repro.service`: N independent server processes
(each a full durable :class:`~repro.service.server.QuantileService`),
consistent-hash routing with virtual nodes, R-way replicated ingest
carried by the protocol-v2 idempotency tokens (exactly-once under
failover), and cluster-wide queries answered by the paper's §4.9
recombination so the merged result keeps a certified error bound.

    from repro.cluster import ClusterCoordinator

    with ClusterCoordinator(nodes=3, replication=2,
                            data_dir="./cluster") as coord:
        with coord.client() as client:
            client.create("api/latency_ms", eps=0.005)
            client.ingest("api/latency_ms", batch)      # to 2 replicas
            values, bound, n = client.query("api/latency_ms", [0.5, 0.99])

See docs/cluster.md for topology, the manifest format, failover
semantics and the certified-bound argument for fan-in.
"""

from .client import ClusterClient, merge_tagged
from .coordinator import ClusterCoordinator
from .errors import (
    ClusterConfigError,
    ClusterError,
    ClusterSyncError,
    NodeUnavailableError,
    ReplicaEngineMismatchError,
)
from .manifest import ClusterManifest, NodeSpec, manifest_path
from .ring import DEFAULT_VNODES, HashRing, OwnershipDelta, ownership_delta
from .sync import MetricSyncReport, NodeSyncReport, SyncDriver, delta_donor

__all__ = [
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterManifest",
    "NodeSpec",
    "HashRing",
    "OwnershipDelta",
    "ownership_delta",
    "DEFAULT_VNODES",
    "SyncDriver",
    "MetricSyncReport",
    "NodeSyncReport",
    "delta_donor",
    "merge_tagged",
    "manifest_path",
    "ClusterError",
    "ClusterConfigError",
    "ClusterSyncError",
    "NodeUnavailableError",
    "ReplicaEngineMismatchError",
]
