"""Consistent hashing with virtual nodes.

The ring places ``vnodes`` points per node on a 64-bit circle; a key is
owned by the first node clockwise of its hash.  Replica sets come from
continuing the walk until ``r`` *distinct* nodes are collected, so
replicas are always different machines no matter how the virtual points
interleave.

Why this construction (and not ``crc32(name) % N``, which the
single-machine :class:`~repro.service.cluster.ClusterService` uses):

* **Minimal movement.**  Adding or removing one node only reassigns the
  keys whose clockwise walk hit that node's points -- an expected
  ``1/N`` of keys, ``~2/N`` with replication, versus nearly all of them
  under mod-N routing.  The durability story depends on this: a metric
  that moves loses its journal history on the node that held it.
* **Failover preserves seniority.**  Dropping a dead node from the
  ``live`` set keeps every survivor's relative order on the circle, and
  only *appends* new owners at the end of a walk.  The first live owner
  of a key is therefore always the most senior surviving replica -- the
  one that has held the metric's full stream the longest -- which is
  what makes the cluster client's query failover answer with a full
  (not partial) summary.

Hashes are :func:`hashlib.blake2b` digests, **not** Python's ``hash()``:
placement must be identical across processes and interpreter runs
(``PYTHONHASHSEED`` randomises ``hash()``), because clients, the
coordinator and every test re-derive it independently from the manifest.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from dataclasses import dataclass, field

from .errors import ClusterConfigError

__all__ = ["HashRing", "OwnershipDelta", "ownership_delta", "DEFAULT_VNODES"]

#: virtual points per node; 64 keeps the max/mean key-load imbalance in
#: the few-percent range for small clusters while the ring stays tiny
#: (N*64 16-byte entries)
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """Process-stable 64-bit hash of *data*."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """An immutable-placement consistent-hash ring.

    Mutation (``add`` / ``remove``) rebuilds the sorted point array;
    lookups are a ``bisect`` plus a short clockwise walk.  Equality of
    inputs gives equality of placement -- there is no hidden state.
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ClusterConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Set[str] = set()
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ClusterConfigError("node id must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _hash64(f"{node}#{i}")
            # ties broken by node id so placement is deterministic even
            # in the astronomically unlikely event of a point collision
            bisect.insort(self._points, (point, node))
        self._keys = [p for p, _ in self._points]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [
            (p, n) for p, n in self._points if n != node
        ]
        self._keys = [p for p, _ in self._points]

    # -- placement ---------------------------------------------------------

    def owners(
        self,
        key: str,
        r: int = 1,
        *,
        live: Optional[Set[str]] = None,
    ) -> List[str]:
        """The first *r* distinct nodes clockwise of *key*'s hash.

        ``live`` restricts the walk to that subset (dead nodes are
        skipped, preserving the order of the survivors).  Returns fewer
        than *r* nodes when fewer distinct candidates exist; an empty
        list when none do.
        """
        if r < 1:
            raise ClusterConfigError(f"replication must be >= 1, got {r}")
        if not self._points:
            return []
        eligible = self._nodes if live is None else (self._nodes & live)
        if not eligible:
            return []
        want = min(r, len(eligible))
        start = bisect.bisect_right(self._keys, _hash64(key))
        n_points = len(self._points)
        out: List[str] = []
        seen: Set[str] = set()
        for step in range(n_points):
            node = self._points[(start + step) % n_points][1]
            if node in seen or node not in eligible:
                continue
            seen.add(node)
            out.append(node)
            if len(out) == want:
                break
        return out

    def owner(
        self, key: str, *, live: Optional[Set[str]] = None
    ) -> Optional[str]:
        """The primary (first live) owner of *key*, or ``None``."""
        found = self.owners(key, 1, live=live)
        return found[0] if found else None

    def load(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of *keys* each node primarily owns (balance check)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.owner(key)
            if node is not None:
                counts[node] += 1
        return counts


@dataclass
class OwnershipDelta:
    """Per-key ownership movement between two ring layouts.

    ``gains[node]`` lists the keys *node* owns after but not before (it
    must acquire their state); ``losses[node]`` the keys it owned before
    but not after (it may drop them once the gainers are live).
    ``moved`` is every key whose owner set changed at all, and
    ``moved_fraction`` is ``len(moved) / len(keys)`` -- the quantity the
    ring's minimal-movement property bounds at roughly ``r/N`` for a
    single join or leave.
    """

    gains: Dict[str, List[str]] = field(default_factory=dict)
    losses: Dict[str, List[str]] = field(default_factory=dict)
    moved: List[str] = field(default_factory=list)
    moved_fraction: float = 0.0

    def transfers(self) -> List[Tuple[str, str]]:
        """Flat ``(key, gaining_node)`` pairs, deterministic order."""
        out: List[Tuple[str, str]] = []
        for node in sorted(self.gains):
            for key in self.gains[node]:
                out.append((key, node))
        return out


def ownership_delta(
    before: HashRing,
    after: HashRing,
    keys: Sequence[str],
    r: int = 1,
) -> OwnershipDelta:
    """Which of *keys* change owners between two ring layouts.

    Both rings are walked with the same replication factor *r* and no
    liveness filter -- the delta describes *placement*, i.e. where state
    must live once every member is healthy.  Only the keys whose walk
    actually crossed an added/removed node's points appear; for a single
    membership change that is the ring's minimal-movement guarantee
    (expected ``~r/N`` of keys), and callers migrate exactly
    ``transfers()`` instead of resending the world.
    """
    delta = OwnershipDelta()
    for key in keys:
        old = before.owners(key, r)
        new = after.owners(key, r)
        if old == new:
            continue
        old_set, new_set = set(old), set(new)
        gained = [n for n in new if n not in old_set]
        lost = [n for n in old if n not in new_set]
        if not gained and not lost:
            continue  # same set, different order: nothing to move
        delta.moved.append(key)
        for node in gained:
            delta.gains.setdefault(node, []).append(key)
        for node in lost:
            delta.losses.setdefault(node, []).append(key)
    delta.moved_fraction = (
        len(delta.moved) / len(keys) if len(keys) else 0.0
    )
    return delta
