"""The node re-sync data plane: pull, catch up, verify bit-identical.

A node that restarts (or joins) is *behind*: its journal stopped at the
moment it died, while the surviving replicas kept acknowledging batches.
Serving from it would silently under-count.  The re-sync protocol fixes
that by replaying the donor's exact state:

1. **Install** -- one ``SYNCPULL`` on the senior surviving replica
   returns an atomic view: the metric's config, its full serialized
   summary (KB-scale by the paper's construction -- a ``b·k`` collapse
   forest, not the stream), and the donor's journal sequence the payload
   reflects.  The target installs the payload wholesale via ``RESTORE``
   (journaled, idempotent under its token).
2. **Catch up** -- each further round pulls the donor's INGEST tail
   after the last applied sequence and replays it on the target *with
   the donor's idempotency tokens*.  Replication gives every batch one
   token cluster-wide, so a record the target also received directly --
   or receives again on a retried round -- is applied exactly once.
3. **Verify** -- every round's response also carries the donor's
   current payload.  The target applied the same records in the same
   order, so (serialization being canonical: ``dumps(loads(x)) == x``)
   its summary must equal the donor's **bit for bit**.  A round with no
   new records and equal bytes is convergence; inequality forces a
   fresh full install (counted, bounded), and exhausting the round
   budget raises :class:`~repro.cluster.errors.ClusterSyncError`.

The driver is pure client-side data plane: it speaks to nodes over
ordinary :class:`~repro.service.client.QuantileClient` connections and
never touches manifests or processes -- the coordinator (or the
``repro cluster resync`` CLI) owns the control plane around it (mark
``syncing``, run the driver, flip ``up``, bump the epoch).

Corruption guard: a donor whose advertised engine disagrees with its
payload magic -- or with what the target already holds under that name
-- raises :class:`~repro.cluster.errors.ReplicaEngineMismatchError`
naming both sides.  Transfers preserve the engine byte; they never
silently merge across engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.engines import engine_of
from ..core.errors import ConfigurationError
from ..obs import hooks as obs_hooks
from ..service.client import QuantileClient
from .errors import ClusterSyncError, ReplicaEngineMismatchError
from .manifest import ClusterManifest
from .ring import HashRing

__all__ = [
    "SyncDriver",
    "MetricSyncReport",
    "NodeSyncReport",
    "delta_donor",
]

#: full-install retries allowed when verification finds divergence
#: before the driver gives up on a metric
_MAX_REBASES = 3


@dataclass
class MetricSyncReport:
    """What one metric's sync did."""

    name: str
    donor: str
    target: str
    engine: str = ""
    rounds: int = 0
    installs: int = 0  #: full-payload RESTOREs (1 + forced rebases)
    records: int = 0  #: journal-tail records replayed
    bytes: int = 0  #: payload + record bytes moved
    verified: bool = False  #: target ended bit-identical to the donor


@dataclass
class NodeSyncReport:
    """What a whole-node re-sync (or migration batch) did."""

    target: str
    synced: List[MetricSyncReport] = field(default_factory=list)
    defined: List[str] = field(default_factory=list)  #: config-only metrics
    kept: List[str] = field(default_factory=list)  #: sole-copy, local wins

    @property
    def bytes(self) -> int:
        return sum(m.bytes for m in self.synced)

    @property
    def rounds(self) -> int:
        return sum(m.rounds for m in self.synced)


def delta_donor(
    key: str,
    gainer: str,
    ring_before: HashRing,
    replication: int,
    live: Set[str],
) -> str:
    """The senior live pre-change owner of *key* (never the gainer).

    Used during rebalance migrations: the donor must hold the key's
    full stream under the *old* placement.  The candidates come from
    the **unfiltered** pre-change owner set -- a live-filtered ring
    walk would promote bystanders that never held the key once real
    owners are down -- and the first live non-gainer among them is the
    most senior replica still holding the full stream.
    """
    for node_id in ring_before.owners(key, replication):
        if node_id != gainer and node_id in live:
            return node_id
    raise ClusterSyncError(
        f"no live donor holds {key!r}: every pre-change owner is down"
    )


class SyncDriver:
    """Stream metrics from donors to a target until bit-identical.

    Parameters
    ----------
    manifest:
        Topology to dial endpoints from.  The driver talks to nodes in
        *any* state -- routing policy is the caller's concern.
    endpoint_overrides:
        ``{node_id: (host, port)}`` -- dial these instead of the
        manifest's entries (chaos proxies; freshly restarted nodes whose
        manifest entry is stale).
    max_rounds:
        Per-metric round budget before the sync is declared stuck.
        Under continuous ingest each round drains the tail that arrived
        during the previous one, so convergence needs the tail to stop
        growing faster than it is pulled -- the budget turns a
        pathological writer into a typed error instead of a spin.
    client_kwargs:
        Forwarded to every per-node :class:`QuantileClient`.
    """

    def __init__(
        self,
        manifest: ClusterManifest,
        *,
        endpoint_overrides: Optional[Dict[str, Tuple[str, int]]] = None,
        max_rounds: int = 64,
        **client_kwargs: Any,
    ) -> None:
        self.manifest = manifest
        self.endpoint_overrides = dict(endpoint_overrides or {})
        self.max_rounds = max_rounds
        self.client_kwargs = client_kwargs
        self._clients: Dict[str, QuantileClient] = {}

    # -- connections -------------------------------------------------------

    def client(self, node_id: str) -> QuantileClient:
        cached = self._clients.get(node_id)
        if cached is not None:
            return cached
        host, port = self.endpoint_overrides.get(
            node_id,
            (
                self.manifest.node(node_id).host,
                self.manifest.node(node_id).port,
            ),
        )
        client = QuantileClient(host, port, **self.client_kwargs)
        self._clients[node_id] = client
        return client

    def close(self) -> None:
        for client in self._clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._clients = {}

    def __enter__(self) -> "SyncDriver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- per-metric protocol -----------------------------------------------

    def _check_engines(
        self, name: str, donor_id: str, target_id: str, view: Dict[str, Any]
    ) -> None:
        """Refuse corrupt or cross-engine transfers before installing."""
        declared = view["engine"]
        actual = engine_of(view["payload"])
        if actual != declared:
            # the donor itself is corrupt: its config and its bytes
            # disagree -- installing either would guess
            raise ReplicaEngineMismatchError(
                name,
                [(f"{donor_id}(config)", declared), (donor_id, actual)],
            )
        target_engine = self._target_engine(name, target_id)
        if target_engine is not None and target_engine != declared:
            raise ReplicaEngineMismatchError(
                name, [(donor_id, declared), (target_id, target_engine)]
            )

    def _target_engine(self, name: str, target_id: str) -> Optional[str]:
        """The engine the target already holds *name* under, if any."""
        try:
            return self.client(target_id).sync_pull(name)["engine"]
        except ConfigurationError:
            return None  # unknown metric there (or no exchange format)

    def sync_metric(
        self,
        name: str,
        donor_id: str,
        target_id: str,
        *,
        require_identity: bool = True,
    ) -> MetricSyncReport:
        """Bring *name* on the target up to the donor's exact state.

        Loops install/catch-up rounds until a round delivers no new
        records and (when ``require_identity``) the target's serialized
        state equals the donor's payload from that same round, byte for
        byte.  ``require_identity=False`` is the *closing* mode used
        after a node has already flipped live: direct writes interleave
        with the tail there, so the loop only guarantees the tail is
        delivered (token dedup keeps it exactly-once), not bitwise
        equality.
        """
        donor = self.client(donor_id)
        target = self.client(target_id)
        report = MetricSyncReport(name=name, donor=donor_id, target=target_id)
        after_seq = 0
        installs = 0
        for _ in range(self.max_rounds):
            report.rounds += 1
            view = donor.sync_pull(name, after_seq)
            if report.engine == "":
                self._check_engines(name, donor_id, target_id, view)
                report.engine = view["engine"]
            fresh = after_seq == 0
            if fresh or view["rebase"]:
                if installs >= 1 + _MAX_REBASES:
                    raise ClusterSyncError(
                        f"sync of {name!r} from {donor_id} to {target_id} "
                        f"keeps diverging after {installs} full installs"
                    )
                installs += 1
                report.installs += 1
                report.bytes += len(view["payload"])
                target.restore(
                    name,
                    kind=view["kind"],
                    epsilon=view["epsilon"],
                    n=view["n"],
                    policy=view["policy"],
                    engine=view["engine"],
                    payload=view["payload"],
                )
                after_seq = view["seq"]
                continue
            for _seq, token, values in view["records"]:
                target.ingest(name, values, token=token)
                report.records += 1
                report.bytes += values.nbytes
            after_seq = view["seq"]
            if view["records"]:
                continue  # drained a tail; go see if more arrived
            if not require_identity:
                report.verified = False
                return report
            target.drain()
            if target.fetch_raw(name) == view["payload"]:
                report.verified = True
                return report
            # same records, different bytes: the target held stale local
            # state underneath (or a writer reached it directly) -- start
            # over from a fresh full install
            after_seq = 0
        raise ClusterSyncError(
            f"sync of {name!r} from {donor_id} to {target_id} did not "
            f"converge within {self.max_rounds} rounds (ingest may be "
            f"outpacing the transfer)"
        )

    def define_metric(
        self, name: str, donor_id: str, target_id: str
    ) -> None:
        """Replicate just the *definition* of *name* onto the target.

        Non-owned metrics carry no data on this node, but the CREATE
        broadcast invariant -- every live node knows every metric, so a
        failover promotion never meets an unknown name -- must survive
        restarts and joins.
        """
        view = self.client(donor_id).sync_pull(name)
        self.client(target_id).create(
            name,
            kind=view["kind"],
            eps=view["epsilon"],
            n=view["n"],
            policy=view["policy"],
            engine=view["engine"],
            window=view.get("window_s") or None,
            slide=view.get("slide_s") or None,
            decay=view.get("decay_s") or None,
        )

    # -- whole-node sync ---------------------------------------------------

    def metric_names(self, node_ids: Sequence[str]) -> List[str]:
        """Union of metric names across *node_ids* (best-effort)."""
        names: Set[str] = set()
        for node_id in node_ids:
            for entry in self.client(node_id).list_metrics():
                names.add(entry["name"])
        return sorted(names)

    def donor_for(
        self,
        name: str,
        target_id: str,
        ring: HashRing,
        replication: int,
        live: Set[str],
    ) -> Optional[str]:
        """The senior surviving *placement* co-owner of *name*.

        The live-filtered walk preserves survivor order, so the first
        live node that is also in the unfiltered owner set is the
        replica that has held the metric's full stream the longest --
        the only correct donor.  A node the walk *promoted* after a
        death holds only the post-death slice and is never returned:
        installing its state would silently under-count.
        """
        placed = set(ring.owners(name, replication))
        for node_id in ring.owners(name, replication, live=live - {target_id}):
            if node_id != target_id and node_id in placed:
                return node_id
        return None

    def resync_node(
        self,
        target_id: str,
        *,
        ring: HashRing,
        replication: int,
        live: Set[str],
        metrics: Optional[Sequence[str]] = None,
        require_identity: bool = True,
    ) -> NodeSyncReport:
        """Bring every metric the target owns up to donor state.

        Owned metrics stream through :meth:`sync_metric` from their
        senior live replica; non-owned ones get their definition only.
        ``live`` is the donor pool -- the healthy nodes.  Publishes
        ``cluster.sync_metrics_total`` / ``cluster.sync_metrics_done``
        gauges as it goes, so ``repro cluster status --prom`` shows
        progress mid-sync.
        """
        if metrics is None:
            donors = sorted(live - {target_id})
            if not donors:
                raise ClusterSyncError(
                    f"cannot re-sync {target_id}: no live donor exists"
                )
            metrics = self.metric_names(donors)
        report = NodeSyncReport(target=target_id)
        reg = obs_hooks.registry()
        reg.gauge("cluster.sync_metrics_total").set(len(metrics))
        reg.gauge("cluster.sync_metrics_done").set(0)
        defn_donors = sorted(live - {target_id})
        for done, name in enumerate(metrics):
            owners = set(ring.owners(name, replication))
            donor = self.donor_for(name, target_id, ring, replication, live)
            if target_id in owners:
                if donor is not None:
                    report.synced.append(
                        self.sync_metric(
                            name,
                            donor,
                            target_id,
                            require_identity=require_identity,
                        )
                    )
                elif owners & live:
                    # a co-owner exists but the walk only reaches
                    # promoted partial replicas -- unreachable given the
                    # walk preserves survivor order, kept as a guard
                    raise ClusterSyncError(
                        f"cannot re-sync {name!r} onto {target_id}: no "
                        f"senior replica is reachable"
                    )
                else:
                    # every co-owner is dead too: the target's own
                    # journal is the sole surviving copy -- local
                    # recovery already replayed it; keep it
                    report.kept.append(name)
            elif defn_donors:
                self.define_metric(name, defn_donors[0], target_id)
                report.defined.append(name)
            reg.gauge("cluster.sync_metrics_done").set(done + 1)
        return report
