"""The ``cluster.json`` manifest: ring layout, replication, epochs.

One JSON document describes everything a client needs to route::

    {
      "version": 1,
      "replication": 2,
      "vnodes": 64,
      "epoch": 3,
      "nodes": [
        {"id": "node-0", "host": "127.0.0.1", "port": 7401, "status": "up"},
        {"id": "node-1", "host": "127.0.0.1", "port": 7402, "status": "down"},
        ...
      ]
    }

Placement is *derived*, never stored: the hash ring is rebuilt from the
node ids + ``vnodes``, so any process holding the manifest computes the
same owners (see :mod:`repro.cluster.ring` on process-stable hashing).
The ring always contains **every** node, up or down -- a dead node keeps
its points so that placement of the survivors does not shift, and
liveness is applied as a filter at lookup time.  ``epoch`` increments on
every membership/status change and on coordinator restart; clients and
PING responses carry it so stale topology is detectable.

The file is written atomically (tmp + ``os.replace``), same discipline
as the service snapshots.  Note the single-machine
:class:`~repro.service.cluster.ClusterService` also keeps a
``cluster.json`` (just ``{"workers": N}``) in *its* data dir -- the
loader here detects that shape and says so rather than failing
cryptically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from .errors import ClusterConfigError
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["NodeSpec", "ClusterManifest", "MANIFEST_VERSION", "MANIFEST_FILE"]

MANIFEST_VERSION = 1
MANIFEST_FILE = "cluster.json"

#: node lifecycle: ``up`` serves reads and writes; ``down`` is dead and
#: routed around; ``syncing`` is alive but catching up from a donor --
#: it receives broadcast writes (so it does not fall further behind) but
#: is excluded from the read/query live set until its state verifies
#: bit-identical and the coordinator flips it to ``up``
_STATUSES = ("up", "down", "syncing")


@dataclass
class NodeSpec:
    """One node's identity and endpoint."""

    id: str
    host: str
    port: int
    status: str = "up"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "host": self.host,
            "port": self.port,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "NodeSpec":
        try:
            spec = cls(
                id=str(raw["id"]),
                host=str(raw["host"]),
                port=int(raw["port"]),
                status=str(raw.get("status", "up")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterConfigError(f"malformed node entry {raw!r}") from exc
        if not spec.id:
            raise ClusterConfigError("node id must be non-empty")
        if spec.status not in _STATUSES:
            raise ClusterConfigError(
                f"node {spec.id!r} has unknown status {spec.status!r} "
                f"(expected one of {_STATUSES})"
            )
        return spec


@dataclass
class ClusterManifest:
    """Topology + replication + epoch for one cluster."""

    nodes: List[NodeSpec] = field(default_factory=list)
    replication: int = 1
    vnodes: int = DEFAULT_VNODES
    epoch: int = 0

    def __post_init__(self) -> None:
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        if not self.nodes:
            raise ClusterConfigError("a cluster needs at least one node")
        ids = [n.id for n in self.nodes]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ClusterConfigError(f"duplicate node ids: {dupes}")
        if self.replication < 1:
            raise ClusterConfigError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.replication > len(self.nodes):
            raise ClusterConfigError(
                f"replication {self.replication} exceeds the node count "
                f"{len(self.nodes)}"
            )
        if self.vnodes < 1:
            raise ClusterConfigError(
                f"vnodes must be >= 1, got {self.vnodes}"
            )
        if self.epoch < 0:
            raise ClusterConfigError(f"epoch must be >= 0, got {self.epoch}")

    # -- accessors ---------------------------------------------------------

    def node(self, node_id: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.id == node_id:
                return spec
        raise ClusterConfigError(f"unknown node id {node_id!r}")

    def node_ids(self) -> List[str]:
        return [n.id for n in self.nodes]

    def live_ids(self) -> List[str]:
        return [n.id for n in self.nodes if n.status == "up"]

    def syncing_ids(self) -> List[str]:
        return [n.id for n in self.nodes if n.status == "syncing"]

    def ring(self) -> HashRing:
        """The placement ring over *all* nodes (liveness filters later)."""
        return HashRing(self.node_ids(), vnodes=self.vnodes)

    def mark(self, node_id: str, status: str) -> bool:
        """Set *node_id*'s status; True if it changed (epoch untouched --
        the coordinator bumps it once per membership event)."""
        if status not in _STATUSES:
            raise ClusterConfigError(f"unknown status {status!r}")
        spec = self.node(node_id)
        if spec.status == status:
            return False
        spec.status = status
        return True

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "epoch": self.epoch,
            "nodes": [n.to_dict() for n in self.nodes],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ClusterManifest":
        if "nodes" not in raw and "workers" in raw:
            raise ClusterConfigError(
                "this cluster.json pins a single-machine ClusterService "
                "worker count, not a multi-node manifest; point the "
                "cluster tools at the coordinator's data dir instead"
            )
        version = raw.get("version")
        if version != MANIFEST_VERSION:
            raise ClusterConfigError(
                f"unsupported manifest version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        try:
            nodes_raw = list(raw["nodes"])
            replication = int(raw["replication"])
            vnodes = int(raw.get("vnodes", DEFAULT_VNODES))
            epoch = int(raw.get("epoch", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterConfigError(f"malformed manifest: {exc}") from exc
        return cls(
            nodes=[NodeSpec.from_dict(n) for n in nodes_raw],
            replication=replication,
            vnodes=vnodes,
            epoch=epoch,
        )

    def save(self, path: str) -> None:
        """Atomic write: tmp file + ``os.replace``."""
        self.validate()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ClusterManifest":
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            raise ClusterConfigError(
                f"no cluster manifest at {path!r}"
            ) from None
        except json.JSONDecodeError as exc:
            raise ClusterConfigError(
                f"cluster manifest {path!r} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, dict):
            raise ClusterConfigError(
                f"cluster manifest {path!r} must be a JSON object"
            )
        return cls.from_dict(raw)


def manifest_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_FILE)
