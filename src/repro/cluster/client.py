"""The cluster client: consistent-hash routing, replication, fan-in.

Routing
    A metric's replica set is the first ``replication`` distinct *live*
    nodes clockwise of its hash on the ring (:mod:`repro.cluster.ring`).
    Every node in the set receives the metric's **full stream** -- this
    is replication for availability, not sharding for capacity
    (capacity scales because *different metrics* land on different
    replica sets).

Exactly-once replication
    One logical ingest gets **one** idempotency token, and that same
    token is sent to every replica.  Each node's journal-backed dedup
    window (protocol v2, PR 4) then applies the batch exactly once no
    matter which connection retried after a lost ack, a reconnect, or a
    failover resend.  CREATE broadcasts to *all* live nodes (metadata
    is tiny and creation is idempotent), so that when a node dies and
    the ring promotes a successor into a replica set, the successor
    already knows the metric and ingest continues without a beat.

Failover
    A transport failure (connect refused, reset, deadline) marks the
    node down in this client's live-view and the operation moves to the
    next owner on the walk.  Because removing a node preserves the
    survivors' relative order on the ring (see :mod:`.ring`), the first
    live owner is always the most senior replica -- the one holding the
    metric's full stream -- so queries after a failover still answer
    from complete state with the full certified bound.  Server-side
    errors (unknown metric, bad phi) are *not* failover events; they
    propagate.

Certified fan-in (the paper's §4.9 recombination)
    :meth:`ClusterClient.fetch_merged` pulls one serialised summary per
    metric -- each from its senior live replica -- and folds them with
    :func:`repro.core.serialize.merge_serialized`.  The merged collapse
    forest still satisfies Lemma 5 (Hoeffding accounting for KLL), so
    ``query_merged`` returns values *with a certified bound* for the
    union stream.  Engine disagreement between nodes surfaces as
    :class:`~repro.cluster.errors.ReplicaEngineMismatchError` naming
    each node and its engine tag (via :func:`merge_tagged`), not as a
    bare :class:`~repro.core.errors.EngineMismatchError`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core import serialize
from ..core.engines import engine_of, loads_any
from ..core.errors import EmptySummaryError
from ..service.client import QuantileClient
from ..service.errors import ServiceConnectionError, ServiceTimeoutError
from .errors import (
    ClusterConfigError,
    NodeUnavailableError,
    ReplicaEngineMismatchError,
)
from .manifest import ClusterManifest
from .ring import HashRing

__all__ = ["ClusterClient", "merge_tagged"]

#: transport failures that trigger mark-down + failover (server-side
#: errors propagate untouched)
_TRANSPORT_ERRORS = (ServiceConnectionError, ServiceTimeoutError)


def merge_tagged(
    tagged: Sequence[Tuple[str, bytes]], *, metric: str = "<fan-in>"
) -> Any:
    """Fold ``(node_id, payload)`` pairs with the §4.9 recombination.

    Same fold as :func:`repro.core.serialize.merge_serialized` -- and
    deterministic in the given order -- but engine agreement is checked
    *first*, against the node ids, so a mixed-engine fan-in fails with
    :class:`ReplicaEngineMismatchError` naming every node and its
    engine tag instead of a bare two-engine mismatch message.
    """
    pairs = list(tagged)
    if not pairs:
        raise EmptySummaryError("cannot merge zero summaries")
    engines = [(node, engine_of(payload)) for node, payload in pairs]
    if len({eng for _, eng in engines}) > 1:
        raise ReplicaEngineMismatchError(metric, engines)
    return serialize.merge_serialized(payload for _, payload in pairs)


class ClusterClient:
    """Route quantile-service calls across a multi-node cluster.

    Parameters
    ----------
    manifest:
        A :class:`~repro.cluster.manifest.ClusterManifest`, or a path
        to a ``cluster.json`` (or the directory holding one).  Nodes
        marked ``down`` in the manifest start out down in this client's
        live-view.
    replication:
        Override the manifest's replication factor (tests; benchmarks
        comparing R=1 vs R=2 on one topology).
    endpoint_overrides:
        ``{node_id: (host, port)}`` -- dial these endpoints instead of
        the manifest's for the given nodes.  The chaos tests use it to
        front a single node with a fault-injection proxy.
    client_kwargs:
        Forwarded to every per-node
        :class:`~repro.service.client.QuantileClient` (timeouts,
        retries, coalescing, ...).

    Connections open lazily, one per node on first use; all the
    per-connection resilience machinery (retry window, pipelining,
    idempotency) applies unchanged underneath the routing layer.
    """

    def __init__(
        self,
        manifest: Union[ClusterManifest, str],
        *,
        replication: Optional[int] = None,
        endpoint_overrides: Optional[Dict[str, Tuple[str, int]]] = None,
        **client_kwargs: Any,
    ) -> None:
        self.manifest_source: Optional[str] = None
        if isinstance(manifest, str):
            self.manifest_source = manifest
            manifest = ClusterManifest.load(manifest)
        self.manifest = manifest
        self._replication_override = replication
        self.replication = (
            manifest.replication if replication is None else replication
        )
        if not 1 <= self.replication <= len(manifest.nodes):
            raise ClusterConfigError(
                f"replication must be in [1, {len(manifest.nodes)}], "
                f"got {self.replication}"
            )
        self.endpoint_overrides = dict(endpoint_overrides or {})
        self.client_kwargs = client_kwargs
        self.ring: HashRing = manifest.ring()
        self._down: Set[str] = {
            spec.id for spec in manifest.nodes if spec.status != "up"
        }
        self._clients: Dict[str, QuantileClient] = {}
        # one token namespace for the whole cluster client: high 32 bits
        # OS-random (never seed-derived), low 32 a counter -- the same
        # scheme QuantileClient uses, but owned here so one logical
        # ingest carries ONE token to every replica
        self._token_high = (
            int.from_bytes(os.urandom(4), "little") or 1
        ) << 32
        self._token_counter = 0

    # -- topology refresh --------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.manifest.epoch

    def reload_manifest(self) -> bool:
        """Re-read ``cluster.json`` and adopt any topology change.

        Returns ``True`` when the view actually changed (epoch bump,
        membership, endpoint or status change).  Connections to nodes
        whose endpoint moved (a restarted node binds a fresh ephemeral
        port) are closed so the next call redials; the down-set is
        rebuilt from the manifest statuses -- ``syncing`` nodes are
        routed around exactly like ``down`` ones until the coordinator
        flips them ``up``.  A no-op when this client was built from an
        in-memory manifest object (no path to re-read).
        """
        if self.manifest_source is None:
            return False
        fresh = ClusterManifest.load(self.manifest_source)
        changed = fresh.to_dict() != self.manifest.to_dict()
        if not changed:
            return False
        old_endpoints = {
            spec.id: (spec.host, spec.port) for spec in self.manifest.nodes
        }
        self.manifest = fresh
        if self._replication_override is None:
            self.replication = fresh.replication
        self.ring = fresh.ring()
        self._down = {
            spec.id for spec in fresh.nodes if spec.status != "up"
        }
        fresh_ids = {spec.id for spec in fresh.nodes}
        for spec in fresh.nodes:
            if spec.id in self.endpoint_overrides:
                continue  # the override, not the manifest, is the truth
            if old_endpoints.get(spec.id) != (spec.host, spec.port):
                stale = self._clients.pop(spec.id, None)
                if stale is not None:
                    try:
                        stale.close()
                    except Exception:  # noqa: BLE001 - being replaced
                        pass
        for node_id in list(self._clients):
            if node_id not in fresh_ids:
                removed = self._clients.pop(node_id)
                try:
                    removed.close()
                except Exception:  # noqa: BLE001 - node left the cluster
                    pass
        return True

    def _with_epoch_retry(self, op: Any) -> Any:
        """Run *op*; on total unavailability, reload the manifest once.

        The retry covers the epoch-bump window: a node this client
        marked down may have been re-synced and flipped ``up`` (possibly
        on a new port), or the membership may have changed entirely.  A
        reload that changes nothing re-raises immediately.
        """
        try:
            return op()
        except NodeUnavailableError:
            if not self.reload_manifest():
                raise
            return op()

    # -- liveness + routing ------------------------------------------------

    def _next_token(self) -> int:
        self._token_counter = (self._token_counter + 1) & 0xFFFFFFFF
        return self._token_high | self._token_counter

    @property
    def live_nodes(self) -> Set[str]:
        return {spec.id for spec in self.manifest.nodes} - self._down

    @property
    def down_nodes(self) -> Set[str]:
        return set(self._down)

    def mark_down(self, node_id: str) -> None:
        """Take *node_id* out of this client's routing (idempotent)."""
        self._down.add(node_id)
        client = self._clients.pop(node_id, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - already failing
                pass

    def mark_up(self, node_id: str) -> None:
        self._down.discard(node_id)

    def owners_of(self, name: str) -> List[str]:
        """The live replica set of metric *name*, senior first."""
        owners = self.ring.owners(name, self.replication, live=self.live_nodes)
        if not owners:
            raise NodeUnavailableError(
                f"no live node can serve {name!r}: all "
                f"{len(self.manifest.nodes)} node(s) are down"
            )
        return owners

    def node_client(self, node_id: str) -> QuantileClient:
        """The (lazily opened) connection to one node."""
        client = self._clients.get(node_id)
        if client is not None:
            return client
        host, port = self.endpoint_overrides.get(
            node_id,
            (
                self.manifest.node(node_id).host,
                self.manifest.node(node_id).port,
            ),
        )
        client = QuantileClient(host, port, **self.client_kwargs)
        self._clients[node_id] = client
        return client

    # -- replicated mutations ----------------------------------------------

    def create(self, name: str, **kwargs: Any) -> bool:
        """Create *name* on **every** live node; True if any created it.

        Broadcasting (rather than creating on the R owners only) is what
        makes failover seamless: when a death promotes a successor into
        a replica set, the successor already holds the metric's
        definition, so the very next replicated ingest to it succeeds.
        Creation is idempotent server-side (same config re-create is a
        no-op; a *different* config raises), and one token covers every
        replica, so retries after a lost ack stay exactly-once.
        """
        token = self._next_token()
        created = False
        any_ok = False
        for node_id in sorted(self.live_nodes):
            try:
                if self.node_client(node_id).create(
                    name, token=token, **kwargs
                ):
                    created = True
                any_ok = True
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)
        if not any_ok:
            raise NodeUnavailableError(
                f"create({name!r}) reached no live node"
            )
        return created

    def ingest(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> int:
        """Replicate one batch to the metric's owners; wait for acks.

        Sends the same idempotency token to every replica.  A replica
        that fails mid-call is marked down and the walk re-derived --
        the promoted successor (if any) receives the batch too, so the
        ack count stays at ``min(R, live)``.  Returns the max journal
        seq across replicas.  Raises :class:`NodeUnavailableError` only
        when *no* node could take the batch.
        """
        token = self._next_token()
        arr = np.asarray(values, dtype=np.float64)
        acked: Set[str] = set()
        # the retry shares the token AND the acked set: a replica that
        # acknowledged before the manifest reload is not resent (and the
        # server-side dedup window would absorb it even if it were)
        return self._with_epoch_retry(
            lambda: self._ingest_attempt(name, arr, token, acked)
        )

    def _ingest_attempt(
        self, name: str, arr: np.ndarray, token: int, acked: Set[str]
    ) -> int:
        max_seq = 0
        while True:
            owners = self.owners_of(name)  # raises when none live
            remaining = [n for n in owners if n not in acked]
            if not remaining:
                return max_seq
            # each pass either acks a node or marks one down, so the
            # loop terminates: acked only grows, live_nodes only shrinks
            for node_id in remaining:
                try:
                    seq = self.node_client(node_id).ingest(
                        name, arr, token=token
                    )
                except _TRANSPORT_ERRORS:
                    self.mark_down(node_id)
                    break  # re-derive the walk: a successor may join it
                acked.add(node_id)
                max_seq = max(max_seq, int(seq))
            else:
                return max_seq

    def ingest_nowait(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> None:
        """Pipelined replicated ingest: send to every owner, read no acks.

        One token per logical batch, shared by all replicas, exactly as
        :meth:`ingest`; acks drain on :meth:`flush` (which is also where
        transport failures surface and trigger mark-down + the
        underlying client's resend of its unacked window).
        """
        token = self._next_token()
        for node_id in self.owners_of(name):
            try:
                self.node_client(node_id).ingest_nowait(
                    name, values, token=token
                )
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)

    def flush(self) -> int:
        """Drain pipelined acks on every open connection; max seq seen."""
        max_seq = 0
        for node_id, client in list(self._clients.items()):
            try:
                max_seq = max(max_seq, client.flush())
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)
        return max_seq

    def drain(self) -> int:
        """Barrier on every live node; returns the max journal seq."""
        max_seq = 0
        any_ok = False
        for node_id in sorted(self.live_nodes):
            try:
                max_seq = max(max_seq, self.node_client(node_id).drain())
                any_ok = True
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)
        if not any_ok:
            raise NodeUnavailableError("drain reached no live node")
        return max_seq

    # -- failover reads ----------------------------------------------------

    def _read_failover(self, name: str, op: Any) -> Any:
        """Run *op* against the metric's owners, senior first.

        Exhausting every replica triggers one manifest reload (a
        re-synced node may have rejoined on a new port) before the
        :class:`NodeUnavailableError` stands.
        """
        return self._with_epoch_retry(
            lambda: self._read_failover_once(name, op)
        )

    def _read_failover_once(self, name: str, op: Any) -> Any:
        last_exc: Optional[Exception] = None
        for node_id in self.owners_of(name):
            try:
                return op(self.node_client(node_id))
            except _TRANSPORT_ERRORS as exc:
                self.mark_down(node_id)
                last_exc = exc
        raise NodeUnavailableError(
            f"every replica of {name!r} is unreachable"
        ) from last_exc

    def query(
        self, name: str, phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified bound in elements, n)`` from the senior
        live replica (which holds the metric's full stream)."""
        return self._read_failover(name, lambda c: c.query(name, phis))

    def quantile(self, name: str, phi: float) -> float:
        return self.query(name, [phi])[0][0]

    def quantiles(self, name: str, phis: Sequence[float]) -> List[float]:
        return self.query(name, phis)[0]

    def describe(self, name: str) -> Dict[str, Any]:
        return self._read_failover(name, lambda c: c.describe(name))

    def cdf(self, name: str, value: float) -> Dict[str, Any]:
        return self._read_failover(name, lambda c: c.cdf(name, value))

    def fetch_raw(self, name: str) -> bytes:
        return self._read_failover(name, lambda c: c.fetch_raw(name))

    def fetch(self, name: str) -> Any:
        return loads_any(self.fetch_raw(name))

    def fetch_replicas(self, name: str) -> List[Tuple[str, bytes]]:
        """``(node_id, payload)`` from every reachable replica of *name*.

        Replicas hold copies of the same stream, so the payloads are
        *alternatives*, not shards -- never merge them (that would
        double-count every element).  Use for verification: engine
        agreement, replica divergence checks, picking the senior copy.
        """
        def attempt() -> List[Tuple[str, bytes]]:
            out: List[Tuple[str, bytes]] = []
            for node_id in self.owners_of(name):
                try:
                    out.append(
                        (node_id, self.node_client(node_id).fetch_raw(name))
                    )
                except _TRANSPORT_ERRORS:
                    self.mark_down(node_id)
            if not out:
                raise NodeUnavailableError(
                    f"every replica of {name!r} is unreachable"
                )
            return out

        return self._with_epoch_retry(attempt)

    def check_replicas(self, name: str) -> List[Tuple[str, str]]:
        """Engine tags per reachable replica of *name*.

        Raises :class:`ReplicaEngineMismatchError` -- naming each node
        and its tag -- when they disagree; returns the
        ``(node_id, engine)`` pairs when they agree.
        """
        tagged = [
            (node_id, engine_of(payload))
            for node_id, payload in self.fetch_replicas(name)
        ]
        if len({eng for _, eng in tagged}) > 1:
            raise ReplicaEngineMismatchError(name, tagged)
        return tagged

    # -- certified fan-in (§4.9) -------------------------------------------

    def fetch_merged(self, names: Sequence[str]) -> Any:
        """One summary for the union of *names*' streams.

        Pulls exactly one payload per metric (from its senior live
        replica -- replicas are copies, so including a second one would
        double-count) and folds them in the order given.  The fold is
        the paper's §4.9 recombination: the merged ``error_bound()``
        remains certified for the combined stream.  Mixed engines raise
        :class:`ReplicaEngineMismatchError` naming the node each
        payload came from.
        """
        tagged: List[Tuple[str, bytes]] = []
        for name in names:
            node_id, payload = self._senior_payload(name)
            tagged.append((node_id, payload))
        return merge_tagged(
            tagged, metric=",".join(names) if names else "<fan-in>"
        )

    def _senior_payload(self, name: str) -> Tuple[str, bytes]:
        return self._with_epoch_retry(
            lambda: self._senior_payload_once(name)
        )

    def _senior_payload_once(self, name: str) -> Tuple[str, bytes]:
        last_exc: Optional[Exception] = None
        for node_id in self.owners_of(name):
            try:
                return node_id, self.node_client(node_id).fetch_raw(name)
            except _TRANSPORT_ERRORS as exc:
                self.mark_down(node_id)
                last_exc = exc
        raise NodeUnavailableError(
            f"every replica of {name!r} is unreachable"
        ) from last_exc

    def query_merged(
        self, names: Sequence[str], phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified bound, n)`` over the union of *names*."""
        merged = self.fetch_merged(names)
        values = [float(v) for v in merged.quantiles(list(phis))]
        return values, float(merged.error_bound()), int(merged.n)

    # -- cluster-wide reads ------------------------------------------------

    def list_metrics(self) -> List[Dict[str, Any]]:
        """Every metric on every live node, tagged with node + owners.

        A metric appears once per replica holding it; ``owners`` is its
        current live replica set for cross-checking placement.
        """
        out: List[Dict[str, Any]] = []
        for node_id in sorted(self.live_nodes):
            try:
                entries = self.node_client(node_id).list_metrics()
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)
                continue
            for entry in entries:
                entry = dict(entry)
                entry["node"] = node_id
                entry["owners"] = self.ring.owners(
                    entry["name"], self.replication, live=self.live_nodes
                )
                out.append(entry)
        return out

    def stats(self, detail: int = 0) -> List[Dict[str, Any]]:
        """Per-node STATS dicts from every live node."""
        out = []
        for node_id in sorted(self.live_nodes):
            try:
                stats = self.node_client(node_id).stats(detail)
            except _TRANSPORT_ERRORS:
                self.mark_down(node_id)
                continue
            stats.setdefault("node_id", node_id)
            out.append(stats)
        return out

    def status(self) -> List[Dict[str, Any]]:
        """One row per manifest node: liveness probe + PING metadata.

        Every node is probed, *including* ones marked ``down`` or
        ``syncing`` -- a ``syncing`` node is alive and mid-recovery,
        which an operator must be able to tell apart from a dead one
        (routing still skips both; only this diagnostic dials them).
        """
        rows: List[Dict[str, Any]] = []
        for spec in self.manifest.nodes:
            row: Dict[str, Any] = {
                "id": spec.id,
                "host": spec.host,
                "port": spec.port,
                "manifest_status": spec.status,
            }
            try:
                pong = self.node_client(spec.id).ping()
            except _TRANSPORT_ERRORS:
                self.mark_down(spec.id)
                row.update({"alive": False})
            else:
                row.update(
                    {
                        "alive": True,
                        "epoch": pong["epoch"],
                        "uptime_s": round(pong["uptime_s"], 3),
                        "n_metrics": pong["n_metrics"],
                        "elements": pong["elements"],
                    }
                )
                if pong["node_id"] and pong["node_id"] != spec.id:
                    row["identity_mismatch"] = pong["node_id"]
            rows.append(row)
        return rows

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for client in self._clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._clients = {}

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
