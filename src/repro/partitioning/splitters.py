"""Splitter generation for value-range data partitioning (Section 1.1).

*"Parallel database systems employ value range data partitioning that
requires generation of splitters to divide the data into approximately
equal parts.  Distributed parallel sorting can also use splitter values to
assign data elements to the nodes where they will be sorted."* (citing
DeWitt, Naughton & Schneider [6])

A splitter vector for ``p`` partitions is exactly the ``i/p``-quantile
vector, so one pass of the MRL framework yields splitters whose partition
sizes are guaranteed within ``epsilon * N`` of the ideal ``N / p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError
from ..core.sketch import QuantileSketch

__all__ = ["compute_splitters", "partition_by_splitters", "PartitionReport"]


def compute_splitters(
    data: "np.ndarray | Sequence[float]",
    n_partitions: int,
    epsilon: float,
    *,
    policy: str = "new",
    sketch: Optional[QuantileSketch] = None,
) -> List[float]:
    """``n_partitions - 1`` splitter values from one pass over *data*.

    Each splitter is an ``epsilon``-approximate ``i/p``-quantile, so every
    resulting partition holds between ``N/p - 2 eps N`` and
    ``N/p + 2 eps N`` elements (adjacent splitters can each err by
    ``eps N``, in opposite directions).
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1 or len(arr) == 0:
        raise EmptySummaryError("cannot compute splitters of no data")
    if n_partitions < 2:
        raise ConfigurationError(
            f"need >= 2 partitions, got {n_partitions}"
        )
    if sketch is None:
        sketch = QuantileSketch(epsilon, n=len(arr), policy=policy)
        sketch.extend(arr)
    splitters = [float(v) for v in sketch.equidepth_boundaries(n_partitions)]
    splitters.sort()
    return splitters


def partition_by_splitters(
    data: "np.ndarray | Sequence[float]", splitters: Sequence[float]
) -> List[np.ndarray]:
    """Route *data* into ``len(splitters) + 1`` ranges (second pass).

    Element ``x`` goes to partition ``i`` where ``splitters[i-1] < x <=
    splitters[i]`` (ties stay left so duplicated splitter values do not
    spill everything rightward).
    """
    arr = np.asarray(data, dtype=np.float64)
    cuts = np.asarray(sorted(splitters), dtype=np.float64)
    assignment = np.searchsorted(cuts, arr, side="left")
    return [arr[assignment == i] for i in range(len(cuts) + 1)]


@dataclass(frozen=True)
class PartitionReport:
    """Balance diagnostics for one partitioning."""

    sizes: List[int]
    n: int

    @property
    def ideal(self) -> float:
        return self.n / len(self.sizes)

    @property
    def max_size(self) -> int:
        return max(self.sizes)

    @property
    def min_size(self) -> int:
        return min(self.sizes)

    @property
    def imbalance(self) -> float:
        """Worst deviation from the ideal size, as a fraction of N.

        This is the quantity the splitter guarantee bounds by
        ``2 * epsilon``.
        """
        return max(abs(s - self.ideal) for s in self.sizes) / self.n

    @property
    def skew(self) -> float:
        """``max partition / ideal`` -- the classic parallel-sort skew
        factor (1.0 is perfect)."""
        return self.max_size / self.ideal

    @classmethod
    def from_partitions(cls, partitions: Sequence[np.ndarray]) -> "PartitionReport":
        sizes = [len(p) for p in partitions]
        return cls(sizes=sizes, n=sum(sizes))
