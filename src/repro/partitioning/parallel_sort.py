"""Simulated shared-nothing parallel sort (DeWitt et al. [6]).

The paper motivates splitters with distributed sorting: *"The cost of
partition imbalance for distributed sorting is proportional to the
difference between completion times for the smallest and largest
partitions."*  The authors' testbed was a shared-nothing parallel machine;
we substitute a cost-model simulation that preserves exactly the behaviour
the experiment studies -- how splitter rank error turns into completion
-time skew:

* every node receives the elements routed to its value range;
* a node's completion time is modelled as ``c * m log2(m)`` comparisons
  for its ``m`` elements (the classic sort cost; the constant cancels in
  all reported ratios);
* the sort finishes when the slowest node does.

The simulation also *verifies* the sort: concatenating the per-node sorted
runs in partition order must equal the globally sorted input -- true for
any splitter vector, which is why approximate splitters are safe to use
(only balance, never correctness, is at stake).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .splitters import PartitionReport, compute_splitters, partition_by_splitters

__all__ = ["NodeResult", "SortResult", "simulate_parallel_sort"]


@dataclass(frozen=True)
class NodeResult:
    """One node's share of the simulated sort."""

    node: int
    n_elements: int
    cost: float  #: modelled comparisons, m * log2(max(m, 2))


@dataclass(frozen=True)
class SortResult:
    """Outcome of a simulated distributed sort."""

    nodes: List[NodeResult]
    report: PartitionReport
    correct: bool  #: concatenated runs == global sorted order

    @property
    def completion_time(self) -> float:
        """Time of the slowest node (the sort's makespan)."""
        return max(node.cost for node in self.nodes)

    @property
    def completion_spread(self) -> float:
        """Largest minus smallest node completion time -- the imbalance
        cost the paper highlights."""
        costs = [node.cost for node in self.nodes]
        return max(costs) - min(costs)

    @property
    def speedup(self) -> float:
        """Single-node sort time divided by the parallel makespan."""
        n = self.report.n
        serial = _sort_cost(n)
        return serial / self.completion_time if self.completion_time else 1.0

    @property
    def efficiency(self) -> float:
        """Speedup per node (1.0 = perfectly balanced)."""
        return self.speedup / len(self.nodes)


def _sort_cost(m: int) -> float:
    return m * math.log2(max(m, 2))


def simulate_parallel_sort(
    data: "np.ndarray | Sequence[float]",
    n_nodes: int,
    epsilon: float = 0.01,
    *,
    splitters: "Sequence[float] | None" = None,
    policy: str = "new",
) -> SortResult:
    """Range-partition *data* by (approximate) splitters and "sort" it.

    With ``splitters=None`` they are computed in one pass at accuracy
    *epsilon*; pass explicit splitters to study bad ones (the ablation
    benches feed exact, approximate and deliberately skewed vectors).
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1 or len(arr) == 0:
        raise ConfigurationError("need a non-empty 1-d dataset")
    if n_nodes < 1:
        raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
    if n_nodes == 1:
        parts = [arr]
    else:
        if splitters is None:
            splitters = compute_splitters(arr, n_nodes, epsilon, policy=policy)
        if len(splitters) != n_nodes - 1:
            raise ConfigurationError(
                f"{n_nodes} nodes need {n_nodes - 1} splitters, "
                f"got {len(splitters)}"
            )
        parts = partition_by_splitters(arr, splitters)
    runs = [np.sort(p) for p in parts]
    merged = np.concatenate(runs) if runs else arr
    correct = bool(np.array_equal(merged, np.sort(arr)))
    nodes = [
        NodeResult(node=i, n_elements=len(p), cost=_sort_cost(len(p)))
        for i, p in enumerate(parts)
    ]
    return SortResult(
        nodes=nodes,
        report=PartitionReport.from_partitions(parts),
        correct=correct,
    )
