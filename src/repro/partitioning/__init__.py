"""Value-range partitioning and simulated distributed sort (Section 1.1)."""

from .parallel_sort import NodeResult, SortResult, simulate_parallel_sort
from .splitters import (
    PartitionReport,
    compute_splitters,
    partition_by_splitters,
)

__all__ = [
    "compute_splitters",
    "partition_by_splitters",
    "PartitionReport",
    "simulate_parallel_sort",
    "SortResult",
    "NodeResult",
]
