"""Blocking client for the quantile-sketch service.

A thin wrapper over one TCP connection speaking
:mod:`repro.service.protocol`.  Two ingest modes:

* :meth:`QuantileClient.ingest` -- send one batch, wait for its ack
  (returns the journal sequence number that makes it durable);
* :meth:`QuantileClient.ingest_nowait` -- *pipelined*: send without
  reading the ack.  Responses arrive strictly in request order, so the
  client counts outstanding acks and drains them before any synchronous
  call (or explicitly via :meth:`flush`).  Pipelining is what lets the
  server batch frames from one connection into a single vectorised
  shard drain -- it is the difference between per-frame round-trip
  latency and wire-speed ingest, and the benchmark exercises exactly
  this path.

The client is deliberately synchronous (usable from shell tools, the
example monitor and load-generator threads); the server side is the
asyncio half.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import serialize
from ..core.framework import QuantileFramework
from . import protocol
from .protocol import Opcode, Request

__all__ = ["QuantileClient"]


class QuantileClient:
    """One connection to a :class:`~repro.service.server.QuantileService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7337, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        #: opcodes of pipelined requests whose acks are still in flight
        self._outstanding: List[int] = []

    # -- plumbing ----------------------------------------------------------

    def _send(self, req: Request) -> None:
        protocol.send_frame(self._sock, protocol.encode_request(req))

    def _recv(self, opcode: int) -> Dict[str, Any]:
        return protocol.decode_response(
            opcode, protocol.recv_frame(self._sock)
        )

    def _call(self, req: Request) -> Dict[str, Any]:
        self.flush()
        self._send(req)
        return self._recv(req.opcode)

    def flush(self) -> int:
        """Drain outstanding pipelined acks; returns the last seq seen."""
        last_seq = 0
        while self._outstanding:
            opcode = self._outstanding.pop(0)
            body = self._recv(opcode)
            last_seq = body.get("seq", last_seq)
        return last_seq

    def close(self) -> None:
        try:
            self.flush()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "QuantileClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- commands ----------------------------------------------------------

    def create(
        self,
        name: str,
        *,
        kind: str = "fixed",
        epsilon: float = 0.01,
        n: Optional[int] = None,
        policy: str = "new",
    ) -> bool:
        """Create metric *name*; True if new, False if it already existed."""
        body = self._call(
            Request(
                opcode=Opcode.CREATE,
                name=name,
                kind=kind,
                epsilon=epsilon,
                n=n,
                policy=policy,
            )
        )
        return bool(body["created"])

    def ingest(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> int:
        """Send one batch and wait for durability; returns the journal seq."""
        body = self._call(
            Request(
                opcode=Opcode.INGEST,
                name=name,
                values=np.asarray(values, dtype=np.float64),
            )
        )
        return int(body["seq"])

    def ingest_nowait(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> None:
        """Pipelined ingest: send without reading the ack (see module doc)."""
        self._send(
            Request(
                opcode=Opcode.INGEST,
                name=name,
                values=np.asarray(values, dtype=np.float64),
            )
        )
        self._outstanding.append(Opcode.INGEST)

    def query(
        self, name: str, phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified bound in elements, n)`` for each phi."""
        body = self._call(
            Request(opcode=Opcode.QUERY, name=name, phis=list(phis))
        )
        return body["values"], body["error_bound"], body["n"]

    def quantile(self, name: str, phi: float) -> float:
        return self.query(name, [phi])[0][0]

    def cdf(self, name: str, value: float) -> Dict[str, Any]:
        """Inverse query: rank / fraction of elements ``<= value``."""
        return self._call(
            Request(opcode=Opcode.CDF, name=name, value=float(value))
        )

    def list_metrics(self) -> List[Dict[str, Any]]:
        return self._call(Request(opcode=Opcode.LIST))["metrics"]

    def fetch(self, name: str) -> QuantileFramework:
        """Pull the metric's summary (§4.9 exchange: merge across servers
        with :func:`repro.core.serialize.merge_serialized`)."""
        return serialize.loads(self.fetch_raw(name))

    def fetch_raw(self, name: str) -> bytes:
        return self._call(Request(opcode=Opcode.FETCH, name=name))["payload"]

    def snapshot(self) -> Tuple[int, str]:
        """Force a snapshot; returns ``(seq, path)``."""
        body = self._call(Request(opcode=Opcode.SNAPSHOT))
        return body["seq"], body["path"]

    def drain(self) -> int:
        """Barrier: apply every queued batch server-side; returns seq."""
        return self._call(Request(opcode=Opcode.DRAIN))["seq"]

    def stats(self) -> Dict[str, Any]:
        return self._call(Request(opcode=Opcode.STATS))["stats"]
