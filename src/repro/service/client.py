"""Blocking, fault-tolerant client for the quantile-sketch service.

A wrapper over one TCP connection speaking
:mod:`repro.service.protocol`, hardened against an unreliable
transport:

* **Per-request deadlines** -- ``timeout`` bounds every call end to end
  (connect, send, receive *and* any backoff spent between retries);
  expiry raises :class:`~repro.service.errors.ServiceTimeoutError`.
* **Reconnect with bounded exponential backoff + jitter** -- a reset,
  stall or mid-frame close tears the socket down and retries up to
  ``max_retries`` times; exhaustion raises
  :class:`~repro.service.errors.ServiceConnectionError`.
* **Idempotency tokens** -- every mutating request (CREATE / INGEST /
  SNAPSHOT) carries a client-generated 64-bit token.  The server's
  journal-backed dedup window replays the recorded ack for a token it
  has already applied, so a retried INGEST after a lost ack is counted
  exactly once.  Retries reuse the *same* token as the original send --
  that is the entire point.

Two ingest modes survive from the original client:

* :meth:`QuantileClient.ingest` -- send one batch, wait for its ack
  (returns the journal sequence number that makes it durable);
* :meth:`QuantileClient.ingest_nowait` -- *pipelined*: send without
  reading the ack.  Responses arrive strictly in request order; the
  client keeps every unacknowledged request (bytes + token) and, after
  a reconnect, resends the whole unacked window in order -- the dedup
  window makes the resend safe.  :meth:`flush` drains the acks.

The client is deliberately synchronous (usable from shell tools, the
example monitor and load-generator threads); the server side is the
asyncio half.
"""

from __future__ import annotations

import os
import random
import socket
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engines import loads_any
from ..core.errors import ConfigurationError, StorageError
from ..windows import window_config
from . import protocol
from .errors import ServiceConnectionError, ServiceTimeoutError
from .protocol import MUTATING_OPCODES, Opcode, Request

__all__ = ["QuantileClient"]

#: deprecated keyword names already warned about (once per name per
#: process -- the shim must not spam a loop that calls create() a lot)
_WARNED_KWARGS: "set[str]" = set()


def _deprecated_kwarg(old: str, new: str) -> None:
    if old in _WARNED_KWARGS:
        return
    _WARNED_KWARGS.add(old)
    warnings.warn(
        f"{old}= is deprecated, use {new}= (same meaning; the old "
        f"spelling will be removed)",
        DeprecationWarning,
        stacklevel=3,
    )


class _Pending:
    """One request awaiting its ack: the complete framed bytes.

    Frames are stored with their length prefix already attached (the
    single-copy :func:`~repro.service.protocol.encode_request_framed`
    path), so a send -- first attempt or post-reconnect resend -- is one
    ``sendall`` with no further copies.
    """

    __slots__ = ("opcode", "framed")

    def __init__(self, opcode: int, framed: "bytes | bytearray") -> None:
        self.opcode = opcode
        self.framed = framed


class QuantileClient:
    """One connection to a :class:`~repro.service.server.QuantileService`.

    Parameters
    ----------
    host, port:
        Server address.  The constructor makes one eager connection
        attempt (fail fast on a dead address); later reconnects go
        through the retry/backoff loop.
    path:
        Connect to an ``AF_UNIX`` stream socket at this filesystem path
        instead of TCP (``host``/``port`` are then ignored).  Pair with
        a server started with ``path=``; identical wire format and
        retry semantics, minus the loopback TCP stack.
    timeout:
        Per-request deadline in seconds, covering send, receive and any
        retry backoff.  (Before the resilience layer this only governed
        the initial connect.)
    connect_timeout:
        Bound on a single TCP connect; defaults to ``timeout``.
    max_retries:
        Reconnect-and-resend attempts per request after a transport
        failure.  ``0`` disables retrying.
    backoff_base, backoff_max:
        Exponential backoff between retries: attempt *i* sleeps
        ``min(backoff_base * 2**(i-1), backoff_max)`` scaled by a
        uniform jitter in ``[0.5, 1.0)``.
    retry_seed:
        Seeds the backoff-jitter RNG; pass an int for reproducible
        retry timing in tests.  The idempotency-token namespace is
        *not* derived from it -- tokens are always OS-random, so
        clients sharing a seed never collide.
    idempotency:
        When True (default), mutating requests carry tokens and are
        safely retried.  When False, a mutating request interrupted
        after it may have reached the server is *not* retried --
        :class:`ServiceConnectionError` is raised instead, because a
        blind resend could double-count.
    max_outstanding:
        Soft cap on pipelined, unacknowledged requests; past it,
        :meth:`ingest_nowait` drains acks before sending more.
    send_coalesce_bytes:
        When > 0, :meth:`ingest_nowait` defers the socket write until
        at least this many bytes of framed requests are queued, then
        ships them with one scatter-gather ``sendmsg`` -- the client
        half of the server's read-coalescing fast path: one syscall
        (and one GIL handoff) per burst instead of per frame.  ``0``
        (default) writes each request immediately, preserving
        per-request latency.  Deferral never weakens delivery: deferred
        frames sit in the same unacked window, and any synchronous
        call, :meth:`flush` or reconnect resend ships them first.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7337,
        *,
        path: Optional[str] = None,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        max_retries: int = 4,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        retry_seed: Optional[int] = None,
        idempotency: bool = True,
        max_outstanding: int = 4096,
        send_coalesce_bytes: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.path = path
        self.timeout = timeout
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.idempotency = idempotency
        self.max_outstanding = max_outstanding
        self.send_coalesce_bytes = send_coalesce_bytes
        self._rng = random.Random(retry_seed)
        # token = client_id (high 32 bits, nonzero) | counter (low 32):
        # unique across clients with overwhelming probability, unique
        # within a client by construction, never 0.  The id is ALWAYS
        # OS-random, never derived from retry_seed: two clients sharing
        # a seed (a reproducible test, a forked worker pool) must not
        # share a token namespace, or one client's dedup entries would
        # answer the other's requests
        self._token_high = (
            int.from_bytes(os.urandom(4), "little") or 1
        ) << 32
        self._token_counter = 0
        #: requests sent (or queued) whose acks have not been received
        self._unacked: List[_Pending] = []
        #: how many of ``_unacked`` were written to the *current* socket
        self._sent = 0
        #: framed bytes queued behind ``_sent`` (send-coalescing gauge)
        self._unsent_bytes = 0
        self.retries_total = 0  #: reconnect-and-resend attempts performed
        self._sock: Optional[socket.socket] = None
        #: buffered receive: one recv can pull many pipelined ack frames
        self._rbuf = b""
        self._connect(time.monotonic() + self.connect_timeout)

    # -- connection plumbing ----------------------------------------------

    def _next_token(self) -> int:
        self._token_counter = (self._token_counter + 1) & 0xFFFFFFFF
        return self._token_high | self._token_counter

    @property
    def _addr(self) -> str:
        if self.path is not None:
            return self.path
        return f"{self.host}:{self.port}"

    def _connect(self, deadline: float) -> None:
        if self._sock is not None:
            return
        budget = deadline - time.monotonic()
        if budget <= 0:
            raise ServiceTimeoutError(
                f"deadline expired before connecting to {self._addr}"
            )
        try:
            if self.path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(min(budget, self.connect_timeout))
                sock.connect(self.path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=min(budget, self.connect_timeout),
                )
        except TimeoutError as exc:
            raise ServiceTimeoutError(
                f"connect to {self._addr} timed out"
            ) from exc
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot connect to {self._addr}: {exc}"
            ) from exc
        if self.path is None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            # a deep send buffer lets pipelined ingest keep streaming
            # while the server's event loop is busy applying a batch
            # (capped by net.core.wmem_max)
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, 4 * 1024 * 1024
            )
        except OSError:  # pragma: no cover - platform-dependent cap
            pass
        self._sock = sock
        self._sent = 0  # nothing is on this fresh connection yet
        self._rbuf = b""
        self._unsent_bytes = sum(len(e.framed) for e in self._unacked)

    def _teardown(self) -> None:
        """Drop the socket; unacked requests stay queued for resend."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._sock = None
        self._sent = 0
        self._rbuf = b""
        self._unsent_bytes = sum(len(e.framed) for e in self._unacked)

    def _remaining(self, deadline: float, what: str) -> float:
        budget = deadline - time.monotonic()
        if budget <= 0:
            self._teardown()
            raise ServiceTimeoutError(f"request deadline expired ({what})")
        return budget

    #: scatter-gather batch caps: stay under IOV_MAX and keep one
    #: sendmsg burst within a few socket-buffer fills
    _SENDMSG_MAX_FRAMES = 512
    _SENDMSG_MAX_BYTES = 4 * 1024 * 1024

    def _send_pending(self, deadline: float) -> None:
        """Write every not-yet-sent unacked request to the socket.

        Consecutive frames ship as one scatter-gather ``sendmsg``
        (vectored write -- no join copy, one syscall per burst).  A
        short write finishes the split frame with ``sendall`` on a
        zero-copy memoryview tail and continues; transport failures
        tear down and leave the whole window queued for resend.
        """
        assert self._sock is not None
        self._unsent_bytes = 0  # everything below is being shipped now
        while self._sent < len(self._unacked):
            bufs = []
            total = 0
            idx = self._sent
            while (
                idx < len(self._unacked)
                and len(bufs) < self._SENDMSG_MAX_FRAMES
                and total < self._SENDMSG_MAX_BYTES
            ):
                framed = self._unacked[idx].framed
                bufs.append(framed)
                total += len(framed)
                idx += 1
            self._sock.settimeout(self._remaining(deadline, "send"))
            try:
                sent = self._sock.sendmsg(bufs)
                if sent == total:
                    self._sent = idx
                else:
                    # short write: skip frames that went out whole, push
                    # the split frame's remainder as a zero-copy tail,
                    # then the rest in full
                    for framed in bufs:
                        if sent >= len(framed):
                            sent -= len(framed)
                        else:
                            self._sock.settimeout(
                                self._remaining(deadline, "send")
                            )
                            self._sock.sendall(memoryview(framed)[sent:])
                            sent = 0
                        self._sent += 1
            except TimeoutError as exc:
                self._teardown()
                raise ServiceTimeoutError(
                    "request deadline expired mid-send"
                ) from exc
            except OSError as exc:
                self._teardown()
                raise ServiceConnectionError(
                    f"connection lost while sending: {exc}"
                ) from exc

    def _recv_one(self, deadline: float) -> Dict[str, Any]:
        """Receive and decode the ack for the oldest unacked request.

        Transport failures (timeout, reset, mid-frame close) raise the
        typed service errors and leave the request queued for resend.
        A *complete* response frame -- even a server error frame --
        acknowledges the request: it is popped before decoding, and
        protocol-level errors propagate to the caller un-retried.
        """
        assert self._sock is not None and self._unacked
        self._sock.settimeout(self._remaining(deadline, "receive"))
        try:
            raw = self._recv_frame_buffered()
        except TimeoutError as exc:
            self._teardown()
            raise ServiceTimeoutError(
                "request deadline expired waiting for the response"
            ) from exc
        except StorageError as exc:
            # recv_frame raises StorageError only for a connection that
            # closed mid-frame: a transport failure, not a codec one
            self._teardown()
            raise ServiceConnectionError(str(exc)) from exc
        except OSError as exc:
            self._teardown()
            raise ServiceConnectionError(
                f"connection lost while receiving: {exc}"
            ) from exc
        entry = self._unacked.pop(0)
        self._sent -= 1
        return protocol.decode_response(entry.opcode, raw)

    def _recv_frame_buffered(self) -> bytes:
        """One response frame, via a receive buffer.

        The server coalesces pipelined acks into large writes; reading
        64 KiB at a time lets a single ``recv`` syscall deliver dozens
        of them, instead of two syscalls per frame.  Raises the same
        exceptions as :func:`protocol.recv_frame` (``TimeoutError``,
        ``OSError``, :class:`~repro.core.errors.StorageError` on a
        connection closed mid-frame).
        """
        assert self._sock is not None
        buf = self._rbuf
        while True:
            if len(buf) >= 4:
                length = int.from_bytes(buf[:4], "little")
                if length > protocol.MAX_FRAME_BYTES:
                    self._rbuf = b""
                    raise StorageError(
                        f"frame length {length} exceeds the "
                        f"{protocol.MAX_FRAME_BYTES}-byte limit"
                    )
                if len(buf) >= 4 + length:
                    self._rbuf = buf[4 + length :]
                    return buf[4 : 4 + length]
            piece = self._sock.recv(65536)
            if not piece:
                self._rbuf = b""
                raise StorageError(
                    "connection closed mid-frame (response truncated)"
                )
            buf = buf + piece if buf else piece
            self._rbuf = buf

    def _retry_is_safe(self) -> bool:
        """A resend is safe iff every unacked mutation carries a token."""
        if self.idempotency:
            return True
        return not any(
            e.opcode in MUTATING_OPCODES for e in self._unacked
        )

    def _drain(self, deadline: float) -> Optional[Dict[str, Any]]:
        """Send all unsent requests and receive all pending acks.

        Returns the decoded body of the *last* ack (the newest request),
        or ``None`` when there was nothing to drain.  On transport
        failure, reconnects and resends the unacked window with
        exponential backoff until the deadline or retry budget runs out.
        """
        attempt = 0
        while True:
            try:
                self._connect(deadline)
                self._send_pending(deadline)
                last: Optional[Dict[str, Any]] = None
                while self._unacked:
                    last = self._recv_one(deadline)
                return last
            except ServiceConnectionError:
                attempt += 1
                self.retries_total += 1
                if attempt > self.max_retries or not self._retry_is_safe():
                    raise
                delay = min(
                    self.backoff_base * (2 ** (attempt - 1)),
                    self.backoff_max,
                )
                delay *= 0.5 + 0.5 * self._rng.random()
                if time.monotonic() + delay >= deadline:
                    raise ServiceTimeoutError(
                        f"request deadline expired after {attempt} "
                        f"retry attempt(s)"
                    ) from None
                time.sleep(delay)

    def _call(self, req: Request) -> Dict[str, Any]:
        """Issue one request synchronously (draining pipelined acks first)."""
        if (
            self.idempotency
            and req.opcode in MUTATING_OPCODES
            and req.token == 0
        ):
            req.token = self._next_token()
        framed = protocol.encode_request_framed(req)
        self._unacked.append(_Pending(req.opcode, framed))
        self._unsent_bytes += len(framed)
        body = self._drain(time.monotonic() + self.timeout)
        assert body is not None  # our own request was in the queue
        return body

    # -- pipelining --------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Pipelined requests whose acks have not been received yet."""
        return len(self._unacked)

    def flush(self) -> int:
        """Drain outstanding pipelined acks; returns the last seq seen."""
        if not self._unacked:
            return 0
        body = self._drain(time.monotonic() + self.timeout)
        seq = (body or {}).get("seq", 0)
        return int(seq) if isinstance(seq, int) else 0

    def close(self) -> None:
        try:
            if self._unacked:
                self.flush()
        except (ServiceConnectionError, ServiceTimeoutError):
            pass
        self._teardown()

    def __enter__(self) -> "QuantileClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- commands ----------------------------------------------------------

    def create(
        self,
        name: str,
        *,
        eps: Optional[float] = None,
        kind: str = "fixed",
        n: Optional[int] = None,
        policy: str = "new",
        engine: str = "paper",
        window: "str | float | None" = None,
        slide: "str | float | None" = None,
        decay: "str | float | None" = None,
        token: int = 0,
        epsilon: Optional[float] = None,
    ) -> bool:
        """Create metric *name*; True if new, False if it already existed.

        ``eps`` is the accuracy knob, spelled exactly as on
        :class:`repro.Sketch` (``epsilon=`` is the deprecated alias and
        warns once).  ``engine`` picks the server-side sketch machinery
        (``"paper"``, ``"kll"`` or ``"frugal"``; see docs/api.md).  The
        non-paper engines require ``kind="fixed"`` with no ``n`` --
        their own knobs size the sketch.

        ``window=``/``slide=``/``decay=`` make the metric time-aware,
        with the same spellings as :class:`repro.Sketch`: durations are
        seconds or strings like ``"5m"``; ``window`` buckets by event
        time (tumbling, or sliding when ``slide`` divides it), ``decay``
        is an exponential half-life, and the two are mutually exclusive.
        The server stamps each ingest batch with its clock and journals
        the stamp, so windows survive crash recovery bit-identically.

        ``token`` overrides the auto-generated idempotency token: the
        cluster client passes one token to every replica of a broadcast
        create so a failover retry against any of them is deduplicated.
        """
        if epsilon is not None:
            _deprecated_kwarg("epsilon", "eps")
            if eps is not None and eps != epsilon:
                raise ConfigurationError(
                    f"pass eps= or epsilon=, not both (got {eps} and "
                    f"{epsilon})"
                )
            eps = epsilon
        if eps is None:
            eps = 0.01
        window_s, slide_s, decay_s = window_config(window, slide, decay)
        body = self._call(
            Request(
                opcode=Opcode.CREATE,
                name=name,
                kind=kind,
                epsilon=eps,
                n=n,
                policy=policy,
                engine=engine,
                window_s=window_s,
                slide_s=slide_s,
                decay_s=decay_s,
                token=token,
            )
        )
        return bool(body["created"])

    def ingest(
        self,
        name: str,
        values: "np.ndarray | Sequence[float]",
        *,
        token: int = 0,
    ) -> int:
        """Send one batch and wait for durability; returns the journal seq.

        ``token`` overrides the auto-generated idempotency token -- the
        cluster client sends the *same* token for one logical batch to
        every replica, so each node applies it exactly once no matter
        which connection retried.
        """
        body = self._call(
            Request(
                opcode=Opcode.INGEST,
                name=name,
                values=np.asarray(values, dtype=np.float64),
                token=token,
            )
        )
        return int(body["seq"])

    def ingest_nowait(
        self,
        name: str,
        values: "np.ndarray | Sequence[float]",
        *,
        token: int = 0,
    ) -> None:
        """Pipelined ingest: send without reading the ack (see module doc).

        The request is queued in the unacked window; if the connection is
        healthy it is written immediately, otherwise it rides along with
        the next :meth:`flush` / synchronous call, which reconnects and
        resends the window (idempotency tokens make that safe).
        """
        if len(self._unacked) >= self.max_outstanding:
            self.flush()
        if not token:
            token = self._next_token() if self.idempotency else 0
        framed = protocol.encode_ingest_framed(name, values, token)
        self._unacked.append(_Pending(Opcode.INGEST, framed))
        self._unsent_bytes += len(framed)
        if self._sock is not None and self._unsent_bytes > 0:
            if self._unsent_bytes < self.send_coalesce_bytes:
                return  # defer: ride along once the burst fills up
            try:
                self._send_pending(time.monotonic() + self.timeout)
            except (ServiceConnectionError, ServiceTimeoutError):
                # stays queued; the next drain retries with backoff
                pass

    def query(
        self, name: str, phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified bound in elements, n)`` for each phi."""
        body = self._call(
            Request(opcode=Opcode.QUERY, name=name, phis=list(phis))
        )
        return body["values"], body["error_bound"], body["n"]

    def quantile(self, name: str, phi: float) -> float:
        return self.query(name, [phi])[0][0]

    def quantiles(self, name: str, phis: Sequence[float]) -> List[float]:
        """Just the values (uniform query-surface spelling of :meth:`query`)."""
        return self.query(name, phis)[0]

    def describe(self, name: str) -> Dict[str, Any]:
        """The same summary dict every in-process sketch's ``describe()``
        returns, assembled from one QUERY round trip (``phi`` 0 and 1 are
        the tracked exact extremes)."""
        from ..core.protocols import DESCRIBE_PHIS

        phis = [0.0, *DESCRIBE_PHIS, 1.0]
        values, bound, n = self.query(name, phis)
        return {
            "n": int(n),
            "min": values[0],
            "max": values[-1],
            "quantiles": {
                phi: values[i + 1] for i, phi in enumerate(DESCRIBE_PHIS)
            },
            "error_bound": float(bound),
            "error_bound_fraction": (float(bound) / n) if n else 0.0,
        }

    def cdf(self, name: str, value: float) -> Dict[str, Any]:
        """Inverse query: rank / fraction of elements ``<= value``."""
        return self._call(
            Request(opcode=Opcode.CDF, name=name, value=float(value))
        )

    def list_metrics(self) -> List[Dict[str, Any]]:
        return self._call(Request(opcode=Opcode.LIST))["metrics"]

    def fetch(self, name: str) -> Any:
        """Pull the metric's summary as a live sketch of its engine
        (dispatch on the payload's magic tag; §4.9 exchange: merge
        same-engine payloads across servers with
        :func:`repro.core.serialize.merge_serialized`)."""
        return loads_any(self.fetch_raw(name))

    def fetch_raw(self, name: str) -> bytes:
        return self._call(Request(opcode=Opcode.FETCH, name=name))["payload"]

    def sync_pull(self, name: str, after_seq: int = 0) -> Dict[str, Any]:
        """One donor round of the cluster re-sync protocol.

        Returns one atomic view of the metric on this server: its
        configuration (``kind``/``epsilon``/``n``/``policy``/``engine``),
        the current full serialized ``payload``, the journal ``seq`` the
        payload reflects, and ``records`` -- the ``(seq, token, values)``
        INGEST tail after ``after_seq``.  ``rebase=True`` means the tail
        could not be produced (rotation or an intervening RESTORE): start
        over from the full payload.
        """
        return self._call(
            Request(
                opcode=Opcode.SYNCPULL, name=name, after_seq=int(after_seq)
            )
        )

    def restore(
        self,
        name: str,
        *,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        engine: str,
        payload: bytes,
        token: int = 0,
    ) -> Tuple[bool, int]:
        """Install a metric's full state from a donor payload.

        The receiving half of re-sync: the payload (a donor's
        :meth:`fetch_raw` / :meth:`sync_pull` bytes) replaces whatever
        this server holds under *name*, journaled as one RESTORE record.
        Returns ``(replaced, seq)``.
        """
        body = self._call(
            Request(
                opcode=Opcode.RESTORE,
                name=name,
                kind=kind,
                epsilon=epsilon,
                n=n,
                policy=policy,
                engine=engine,
                payload=payload,
                token=token,
            )
        )
        return bool(body["replaced"]), int(body["seq"])

    def snapshot(self) -> Tuple[int, str]:
        """Force a snapshot; returns ``(seq, path)``."""
        body = self._call(Request(opcode=Opcode.SNAPSHOT))
        return body["seq"], body["path"]

    def drain(self) -> int:
        """Barrier: apply every queued batch server-side; returns seq."""
        return self._call(Request(opcode=Opcode.DRAIN))["seq"]

    def stats(self, detail: int = 0) -> Dict[str, Any]:
        """Server metrics; ``detail=1`` adds the rendered Prometheus text
        under the ``"prometheus"`` key."""
        return self._call(
            Request(opcode=Opcode.STATS, detail=int(detail))
        )["stats"]

    def ping(self) -> Dict[str, Any]:
        """Liveness + route metadata: ``node_id``, cluster ``epoch``,
        ``uptime_s``, ``n_metrics``, ``elements``.  A standalone server
        answers with an empty ``node_id``."""
        return self._call(Request(opcode=Opcode.PING))

    # -- watch rules -------------------------------------------------------

    def watch_add(
        self,
        rule_id: str,
        metric: str,
        phi: float,
        threshold: float,
        *,
        op: str = ">",
        token: int = 0,
    ) -> bool:
        """Register a threshold rule: alert when the *phi*-quantile of
        *metric* is above (``op=">"``) or below (``op="<"``) *threshold*.

        The server evaluates rules on its scheduler tick using the
        certified bound: ``definite`` severity means the bound *proves*
        the crossing, ``possible`` means only the estimate crosses (the
        frugal engine, having no bound, is always ``possible``).  Rules
        are journaled and snapshotted like metrics: they survive a
        crash, counters included.  Returns ``True`` if the rule is new;
        re-adding an identical rule is a no-op, a *different* rule under
        the same id is an error.
        """
        body = self._call(
            Request(
                opcode=Opcode.WATCH,
                name=rule_id,
                metric=metric,
                phi=float(phi),
                rule_op=op,
                threshold=float(threshold),
                token=token,
            )
        )
        return bool(body["added"])

    def watch_remove(self, rule_id: str, *, token: int = 0) -> bool:
        """Drop a watch rule; returns whether it existed."""
        body = self._call(
            Request(opcode=Opcode.UNWATCH, name=rule_id, token=token)
        )
        return bool(body["removed"])

    def alerts(self, *, evaluate: bool = False) -> List[Dict[str, Any]]:
        """The current state of every watch rule, sorted by rule id.

        Each record carries the rule's configuration, its last
        evaluation outcome (``ok`` / ``possible`` / ``definite`` /
        ``no_data`` / ``no_metric`` / ``pending``), the last observed
        quantile value, and cumulative ``definite_total`` /
        ``possible_total`` fire counters.  ``evaluate=True`` runs one
        evaluation pass server-side first (same code path as the
        background scheduler) -- handy with an injected clock or when
        the watcher is disabled.
        """
        return self._call(
            Request(opcode=Opcode.ALERTS, detail=1 if evaluate else 0)
        )["alerts"]
