"""repro.service: a sharded, durable quantile-sketch server.

The deployment mode the paper anticipates (§4.9: one-pass summaries
maintained next to the data and shipped between nodes) as a long-running
process: a registry of named sketches (``namespace/metric``), sharded
across :class:`~repro.core.bank.SketchBank`-backed worker shards so
batched ingest from many connections takes the vectorised presorted
path, speaking a small length-prefixed binary protocol whose sketch
payloads reuse the :mod:`repro.core.serialize` wire format.

Durability is first class: every acknowledged ingest batch is appended
to a CRC-guarded journal before it is applied, periodic snapshots are
written atomically (write-temp + rename), and recovery replays the
journal tail on top of the latest snapshot -- yielding answers
bit-identical to an uninterrupted run (property-tested, including torn
journal tails).

    from repro.service import QuantileClient, ServerThread

    with ServerThread(data_dir="./slo-data") as server:
        client = QuantileClient("127.0.0.1", server.port)
        client.create("api/latency_ms", kind="adaptive", eps=0.005)
        client.ingest("api/latency_ms", latencies)
        values, bound, n = client.query("api/latency_ms", [0.5, 0.99])
"""

from .client import QuantileClient
from .cluster import ClusterClient, ClusterService
from .errors import ServiceConnectionError, ServiceError, ServiceTimeoutError
from .faults import ChaosProxy, FaultEvent, FaultSchedule
from .journal import IngestJournal, JournalRecord, read_journal
from .metrics import ServiceMetrics
from .registry import DedupWindow, MetricEntry, SketchRegistry
from .server import QuantileService, ServerThread
from .snapshot import read_snapshot, write_snapshot

__all__ = [
    "QuantileClient",
    "QuantileService",
    "ServerThread",
    "ClusterService",
    "ClusterClient",
    "SketchRegistry",
    "MetricEntry",
    "DedupWindow",
    "ServiceMetrics",
    "ServiceError",
    "ServiceConnectionError",
    "ServiceTimeoutError",
    "ChaosProxy",
    "FaultSchedule",
    "FaultEvent",
    "IngestJournal",
    "JournalRecord",
    "read_journal",
    "read_snapshot",
    "write_snapshot",
]
