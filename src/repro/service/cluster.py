"""Multi-process serving: break the one-core ceiling.

CPython pins one :class:`~repro.service.server.QuantileService` to one
core -- the event loop, frame parsing, journal CRC and the numpy ingest
kernels all share the GIL.  This module runs **N full service processes**
and routes *by metric name*: worker ``shard_of(name, N)`` owns every
byte of that metric's stream.

That topology -- one process per shard group, rather than
``SO_REUSEPORT`` spraying connections across acceptors -- is what makes
the cluster *bit-exact*.  Because a metric's whole stream reaches
exactly one worker, in order, and the bank's batched ingest is
bit-identical to feeding each sketch its subsequence one record at a
time (the PR-2 SketchBank property), every per-metric summary (and its
Lemma 5 certified bound) is byte-for-byte the state a single-process
server would hold.  With ``SO_REUSEPORT``, one metric's batches would
interleave across processes and no such guarantee exists.

Cluster-wide queries are the paper's §4.9 exchange: each owner ships its
serialised summary (``FETCH``) and the coordinator folds them with
:func:`~repro.core.serialize.merge_serialized`; the combined collapse
forest still satisfies Lemma 5, so the merged answer carries a certified
bound too.

Durability composes per worker: each process keeps its own snapshot +
journal under ``data_dir/worker-<i>``, and a ``cluster.json`` marker
pins the worker count -- restarting with a different ``N`` would silently
re-route metrics away from their journals, so that is refused.

    from repro.service import ClusterService, ClusterClient

    with ClusterService(workers=4, data_dir="./data") as cluster:
        with ClusterClient("127.0.0.1", cluster.ports) as client:
            client.create("api/latency_ms", eps=0.005)
            client.ingest("api/latency_ms", batch)
            values, bound, n = client.query("api/latency_ms", [0.5, 0.99])
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import serialize
from ..core.errors import StorageError
from .client import QuantileClient
from .registry import shard_of

__all__ = ["ClusterService", "ClusterClient"]

_CLUSTER_META = "cluster.json"


def _worker_main(
    worker_id: int,
    host: str,
    port: int,
    data_dir: Optional[str],
    conn: "multiprocessing.connection.Connection",
    service_kwargs: Dict[str, Any],
) -> None:
    """Entry point of one worker process (spawn-safe, module level).

    Runs a complete :class:`QuantileService` -- own event loop, own
    shards, own journal -- reports the bound port (ephemeral when the
    cluster asked for port 0) back over *conn*, then serves until
    SIGTERM/SIGINT, which triggers the same graceful drain a
    single-process server performs: apply queued batches, final
    snapshot, close the journal.
    """
    import asyncio

    from .server import QuantileService

    service = QuantileService(
        host=host, port=port, data_dir=data_dir, **service_kwargs
    )

    async def _run() -> None:
        try:
            await service.start()
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
            raise
        conn.send(("ready", service.port))
        conn.close()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await service.stop(graceful=True)

    asyncio.run(_run())


class ClusterService:
    """N worker processes, each a full :class:`QuantileService`.

    Parameters
    ----------
    workers:
        Process count.  Metric *name* is owned by worker
        ``shard_of(name, workers)``.
    host:
        Bind address for every worker.
    port:
        ``0`` (default) gives every worker an ephemeral port; a nonzero
        value binds worker *i* to ``port + i``.
    data_dir:
        Per-worker durability roots are created under it
        (``worker-0`` ... ``worker-N-1``).  ``None`` runs ephemeral.
    service_kwargs:
        Forwarded verbatim to every worker's ``QuantileService``
        (``n_shards``, ``fsync``, ``batch_window_s``, ...).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Optional[str] = None,
        **service_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise StorageError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.host = host
        self.base_port = port
        self.data_dir = data_dir
        self.service_kwargs = service_kwargs
        self.ports: List[int] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def _check_meta(self) -> None:
        """Pin the worker count across restarts.

        Routing is ``shard_of(name, workers)``: restarting the same
        ``data_dir`` with a different ``workers`` would send metrics to
        workers that do not hold their journals, silently forking
        history.  Refuse instead.
        """
        assert self.data_dir is not None
        os.makedirs(self.data_dir, exist_ok=True)
        meta_path = os.path.join(self.data_dir, _CLUSTER_META)
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            stored = int(meta.get("workers", 0))
            if stored != self.workers:
                raise StorageError(
                    f"{self.data_dir} was written by a {stored}-worker "
                    f"cluster; restarting with workers={self.workers} "
                    f"would re-route metrics away from their journals"
                )
        else:
            tmp = meta_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"workers": self.workers}, fh)
            os.replace(tmp, meta_path)

    def start(self, timeout: float = 30.0) -> "ClusterService":
        if self.data_dir is not None:
            self._check_meta()
        ctx = multiprocessing.get_context("spawn")
        pending: List[Tuple[int, Any]] = []
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                name=f"repro-worker-{i}",
                args=(
                    i,
                    self.host,
                    0 if self.base_port == 0 else self.base_port + i,
                    (
                        os.path.join(self.data_dir, f"worker-{i}")
                        if self.data_dir is not None
                        else None
                    ),
                    child_conn,
                    self.service_kwargs,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            pending.append((i, parent_conn))
        deadline = time.monotonic() + timeout
        ports = [0] * self.workers
        try:
            for i, parent_conn in pending:
                budget = deadline - time.monotonic()
                if budget <= 0 or not parent_conn.poll(max(budget, 0.0)):
                    raise StorageError(
                        f"worker {i} failed to start within {timeout}s"
                    )
                try:
                    status, value = parent_conn.recv()
                except EOFError:
                    code = self._procs[i].exitcode
                    raise StorageError(
                        f"worker {i} died during startup "
                        f"(exit code {code})"
                    ) from None
                if status != "ready":
                    raise StorageError(f"worker {i} failed to start: {value}")
                ports[i] = int(value)
                parent_conn.close()
        except BaseException:
            self.stop(graceful=False)
            raise
        self.ports = ports
        return self

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """SIGTERM (graceful drain + final snapshot) or SIGKILL every worker.

        ``graceful=False`` is the crash half of the recovery tests: the
        journals already hold every acknowledged batch, exactly as after
        a real kill.
        """
        if self._stopped:
            return
        self._stopped = True
        for proc in self._procs:
            if not proc.is_alive():
                continue
            if graceful:
                proc.terminate()  # SIGTERM -> worker's graceful stop
            else:
                proc.kill()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():  # pragma: no cover - drain overran
                proc.kill()
                proc.join(5.0)
        self._procs = []

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class ClusterClient:
    """Route :class:`QuantileClient` calls across a worker cluster.

    Per-metric commands go to the metric's owner
    (``shard_of(name, n_workers)``); ``list``/``stats`` fan in across
    all workers; ``drain``/``snapshot``/``flush`` broadcast.  The §4.9
    cross-metric queries -- :meth:`fetch_merged` / :meth:`query_merged`
    -- pull each owner's serialised summary and fold them with
    :func:`~repro.core.serialize.merge_serialized`.

    Connections are opened lazily, one per worker on first use, and
    every per-connection resilience feature (retry window, idempotency
    tokens, pipelining) applies unchanged -- this class only routes.
    """

    def __init__(
        self,
        host: str,
        ports: Sequence[int],
        **client_kwargs: Any,
    ) -> None:
        if not ports:
            raise StorageError("a cluster client needs at least one port")
        self.host = host
        self.ports = list(ports)
        self.client_kwargs = client_kwargs
        self._clients: List[Optional[QuantileClient]] = [None] * len(
            self.ports
        )

    # -- routing -----------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self.ports)

    def owner_of(self, name: str) -> int:
        """Worker index that owns every byte of metric *name*."""
        return shard_of(name, self.n_workers)

    def worker(self, index: int) -> QuantileClient:
        client = self._clients[index]
        if client is None:
            client = QuantileClient(
                self.host, self.ports[index], **self.client_kwargs
            )
            self._clients[index] = client
        return client

    def _owner(self, name: str) -> QuantileClient:
        return self.worker(self.owner_of(name))

    def _live(self) -> List[Tuple[int, QuantileClient]]:
        return [
            (i, c) for i, c in enumerate(self._clients) if c is not None
        ]

    # -- per-metric commands (routed to the owner) -------------------------

    def create(self, name: str, **kwargs: Any) -> bool:
        return self._owner(name).create(name, **kwargs)

    def ingest(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> int:
        return self._owner(name).ingest(name, values)

    def ingest_nowait(
        self, name: str, values: "np.ndarray | Sequence[float]"
    ) -> None:
        self._owner(name).ingest_nowait(name, values)

    def query(
        self, name: str, phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        return self._owner(name).query(name, phis)

    def quantile(self, name: str, phi: float) -> float:
        return self._owner(name).quantile(name, phi)

    def quantiles(self, name: str, phis: Sequence[float]) -> List[float]:
        return self._owner(name).quantiles(name, phis)

    def describe(self, name: str) -> Dict[str, Any]:
        return self._owner(name).describe(name)

    def cdf(self, name: str, value: float) -> Dict[str, Any]:
        return self._owner(name).cdf(name, value)

    def fetch(self, name: str) -> Any:
        return self._owner(name).fetch(name)

    def fetch_raw(self, name: str) -> bytes:
        return self._owner(name).fetch_raw(name)

    # -- cluster-wide fan-in / broadcast -----------------------------------

    def fetch_merged(self, names: Sequence[str]) -> Any:
        """One summary for the union of *names* (the §4.9 recombination).

        Each owner ships its serialised summary; for the paper engine
        the fold preserves Lemma 5, for KLL the Hoeffding accounting
        adds, so the result's ``error_bound()`` is certified for the
        combined stream.  Mixed-engine payloads raise
        :class:`~repro.core.errors.EngineMismatchError`; frugal metrics
        are not mergeable (fetch them individually).  Deterministic:
        payloads are merged in the order *names* are given.
        """
        return serialize.merge_serialized(
            self.fetch_raw(name) for name in names
        )

    def query_merged(
        self, names: Sequence[str], phis: Sequence[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified bound, n)`` over the union of *names*."""
        merged = self.fetch_merged(names)
        values = [float(v) for v in merged.quantiles(list(phis))]
        return values, float(merged.error_bound()), int(merged.n)

    def list_metrics(self) -> List[Dict[str, Any]]:
        """All metrics across all workers, each tagged with its owner."""
        out: List[Dict[str, Any]] = []
        for i in range(self.n_workers):
            for entry in self.worker(i).list_metrics():
                entry = dict(entry)
                entry["worker"] = i
                out.append(entry)
        return out

    def stats(self, detail: int = 0) -> List[Dict[str, Any]]:
        """Per-worker STATS dicts, each tagged with its worker index."""
        out = []
        for i in range(self.n_workers):
            stats = self.worker(i).stats(detail)
            stats["worker"] = i
            out.append(stats)
        return out

    def flush(self) -> int:
        """Drain pipelined acks on every open connection; max seq seen."""
        return max(
            (client.flush() for _, client in self._live()), default=0
        )

    def drain(self) -> int:
        """Barrier on every worker; returns the max journal seq."""
        return max(
            self.worker(i).drain() for i in range(self.n_workers)
        )

    def snapshot(self) -> List[Tuple[int, str]]:
        """Force a snapshot on every worker; ``(seq, path)`` per worker."""
        return [
            self.worker(i).snapshot() for i in range(self.n_workers)
        ]

    def close(self) -> None:
        for _, client in self._live():
            client.close()
        self._clients = [None] * len(self.ports)

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
