"""Atomic registry snapshots.

A snapshot captures every metric's *exact* sketch state at one journal
sequence number.  Fixed-N metrics embed their framework in the existing
:mod:`repro.core.serialize` wire format verbatim (the round-trip
guarantee there -- identical answers, identical certified bounds, and
identical behaviour under further ingest -- is what makes recovery
bit-identical).  Adaptive metrics add a thin stage container: each
closed stage's surviving buffers and Lemma 5 statistics, the live stage
again in the core wire format, plus the roll-schedule counters.

File layout (little-endian)::

    header:  magic "MRLSNAP1" | u16 version | u16 pad | u32 n_metrics
             | u64 seq
    per metric:
        name (u16 len + utf8) | u8 kind | f64 epsilon
        | u64 n (0 = unset) | policy (u16 len + utf8)
        | u8 engine                       (version >= 2 only)
        | u8 wmode | f64 p1 | f64 p2      (version >= 3 only; wmode 0 =
          plain, 1 = window: p1/p2 = window/slide seconds, 2 = decay:
          p1 = half-life seconds)
        windowed (wmode != 0):
                  u32 len | ring wire payload (WINSKT01/EXDSKT01)
        paper fixed:  u32 len | core-serialize payload
        paper adaptive:
                  u64 initial_capacity | u64 capacity | u64 active_n
                  | u32 n_closed
                  per closed stage:
                      u64 n | u64 n_collapses | u64 sum_collapse_weights
                      | u32 n_buffers
                      per buffer: u64 weight | i32 level | u32 n_low_pad
                                  | u32 n_high_pad | u32 n_values
                                  | n_values * f64
                  u32 len | core-serialize payload (live stage)
        kll/frugal:   u32 len | engine wire payload (KLLSKT01/FRGSKT01)
    rules (version >= 3 only):
        u32 n_rules
        per rule: rule_id (u16 len + utf8) | metric (u16 len + utf8)
                  | f64 phi | u8 op | f64 threshold
                  | u64 definite_total | u64 possible_total
    trailer: u32 crc32 over everything before it

Version 2 added the per-metric engine byte; version 3 the window/decay
config block and the WATCH rules section (rule configs plus how often
each fired, so alert counters survive a crash).  Version-1 files (all
metrics implicitly ``paper``) and version-2 files still read.

Writes are atomic (temp file + ``os.replace`` + directory fsync): a
crash mid-write leaves the previous snapshot untouched, and the CRC
trailer rejects a partially-flushed file.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import List, Optional

import numpy as np

from ..core import serialize
from ..core.adaptive import AdaptiveQuantileSketch, _ClosedStage
from ..core.buffer import Buffer
from ..core.errors import StorageError
from ..core.framework import QuantileFramework
from ..core.frugal import FrugalSketch
from ..core.kll import KLLSketch
from .registry import SketchRegistry

__all__ = ["write_snapshot", "read_snapshot", "SNAPSHOT_VERSION"]

_MAGIC = b"MRLSNAP1"
SNAPSHOT_VERSION = 3

_WMODE_NONE = 0
_WMODE_WINDOW = 1
_WMODE_DECAY = 2

_ENGINE_IDS = {"paper": 0, "kll": 1, "frugal": 2}
_ENGINE_NAMES = {v: k for k, v in _ENGINE_IDS.items()}

_HEADER = struct.Struct("<8sHHIQ")
_STAGE_HEADER = struct.Struct("<QQQI")
_BUFFER_HEADER = struct.Struct("<QiIII")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    return _U16.pack(len(raw)) + raw


def _dump_framework(fw: QuantileFramework) -> bytes:
    payload = serialize.dumps(fw)
    return _U32.pack(len(payload)) + payload


def _dump_adaptive(sk: AdaptiveQuantileSketch) -> bytes:
    out = io.BytesIO()
    out.write(_U64.pack(sk.initial_capacity))
    out.write(_U64.pack(sk._capacity))
    out.write(_U64.pack(sk._active_n))
    out.write(_U32.pack(len(sk._closed)))
    for stage in sk._closed:
        out.write(
            _STAGE_HEADER.pack(
                stage.n,
                stage.n_collapses,
                stage.sum_collapse_weights,
                len(stage.buffers),
            )
        )
        for buf in stage.buffers:
            values = np.ascontiguousarray(buf.values, dtype="<f8")
            out.write(
                _BUFFER_HEADER.pack(
                    buf.weight,
                    buf.level,
                    buf.n_low_pad,
                    buf.n_high_pad,
                    values.size,
                )
            )
            out.write(values.tobytes())
    out.write(_dump_framework(sk._active))
    return out.getvalue()


def write_snapshot(
    path: str,
    registry: SketchRegistry,
    seq: int,
    rules: Optional[object] = None,
) -> None:
    """Atomically persist *registry* at journal sequence *seq* to *path*.

    The caller must have applied all pending shard queues first (the
    server's snapshot command drains before capturing), otherwise queued
    batches would be silently dropped from the image.  *rules* is the
    server's :class:`~repro.service.rules.RuleSet` (or ``None`` for an
    empty rules section).
    """
    if registry.pending_batches():
        raise StorageError(
            "snapshot requested with unapplied ingest batches; "
            "drain the shards first"
        )
    entries = registry.entries()
    body = io.BytesIO()
    body.write(_HEADER.pack(_MAGIC, SNAPSHOT_VERSION, 0, len(entries), seq))
    for entry in entries:
        body.write(_pack_str(entry.name))
        body.write(bytes([0 if entry.kind == "fixed" else 1]))
        body.write(_F64.pack(entry.epsilon))
        body.write(_U64.pack(0 if entry.n is None else int(entry.n)))
        body.write(_pack_str(entry.policy))
        body.write(bytes([_ENGINE_IDS[entry.engine]]))
        if entry.window_s:
            body.write(bytes([_WMODE_WINDOW]))
            body.write(_F64.pack(entry.window_s))
            body.write(_F64.pack(entry.slide_s))
        elif entry.decay_s:
            body.write(bytes([_WMODE_DECAY]))
            body.write(_F64.pack(entry.decay_s))
            body.write(_F64.pack(0.0))
        else:
            body.write(bytes([_WMODE_NONE]))
            body.write(_F64.pack(0.0))
            body.write(_F64.pack(0.0))
        if entry.windowed:
            payload = entry.sketch.to_bytes()
            body.write(_U32.pack(len(payload)))
            body.write(payload)
        elif entry.engine in ("kll", "frugal"):
            payload = entry.sketch.to_bytes()
            body.write(_U32.pack(len(payload)))
            body.write(payload)
        elif isinstance(entry.sketch, QuantileFramework):
            body.write(_dump_framework(entry.sketch))
        else:
            body.write(_dump_adaptive(entry.sketch))
    from .protocol import _RULE_OPS

    rule_list = rules.rules() if rules is not None else []
    body.write(_U32.pack(len(rule_list)))
    for rule in rule_list:
        state = rules.state_of(rule.rule_id)
        body.write(_pack_str(rule.rule_id))
        body.write(_pack_str(rule.metric))
        body.write(_F64.pack(rule.phi))
        body.write(bytes([_RULE_OPS[rule.op]]))
        body.write(_F64.pack(rule.threshold))
        body.write(_U64.pack(state.definite_total))
        body.write(_U64.pack(state.possible_total))
    raw = body.getvalue()
    raw += _U32.pack(zlib.crc32(raw) & 0xFFFFFFFF)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(raw)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class _SnapReader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, size: int, what: str) -> bytes:
        end = self.pos + size
        if end > len(self.buf):
            raise StorageError(
                f"corrupt snapshot: expected {size} bytes of {what}"
            )
        raw = self.buf[self.pos : end]
        self.pos = end
        return raw

    def unpack(self, st: struct.Struct, what: str):
        return st.unpack(self.take(st.size, what))

    def string(self, what: str) -> str:
        (n,) = self.unpack(_U16, what)
        return self.take(n, what).decode("utf-8")


def _load_framework(r: _SnapReader, what: str) -> QuantileFramework:
    (size,) = r.unpack(_U32, what)
    return serialize.loads(r.take(size, what))


def _load_adaptive(
    r: _SnapReader, epsilon: float, policy: str
) -> AdaptiveQuantileSketch:
    (initial_capacity,) = r.unpack(_U64, "initial capacity")
    (capacity,) = r.unpack(_U64, "capacity")
    (active_n,) = r.unpack(_U64, "active n")
    (n_closed,) = r.unpack(_U32, "closed stage count")
    closed: List[_ClosedStage] = []
    for _ in range(n_closed):
        n, n_collapses, sum_weights, n_buffers = r.unpack(
            _STAGE_HEADER, "stage header"
        )
        buffers = []
        for _ in range(n_buffers):
            weight, level, n_low, n_high, n_values = r.unpack(
                _BUFFER_HEADER, "stage buffer header"
            )
            values = np.frombuffer(
                r.take(8 * n_values, "stage buffer values"), dtype="<f8"
            ).copy()
            if n_low + n_high > n_values:
                raise StorageError(
                    "corrupt snapshot: pad counts exceed buffer size"
                )
            buffers.append(
                Buffer(
                    values=values,
                    weight=weight,
                    level=level,
                    n_low_pad=n_low,
                    n_high_pad=n_high,
                )
            )
        closed.append(
            _ClosedStage.from_state(buffers, n, n_collapses, sum_weights)
        )
    active = _load_framework(r, "active stage payload")
    return AdaptiveQuantileSketch._restore(
        epsilon=epsilon,
        initial_capacity=initial_capacity,
        policy=policy,
        closed=closed,
        capacity=capacity,
        active=active,
        active_n=active_n,
    )


def read_snapshot(
    path: str,
    registry: SketchRegistry,
    rules: Optional[object] = None,
) -> int:
    """Restore every metric in the snapshot at *path* into *registry*.

    Returns the journal sequence number the snapshot was taken at.  The
    registry must be freshly constructed (no metrics); restored sketches
    are re-adopted into its shard banks exactly as live creation would.
    Passing a fresh :class:`~repro.service.rules.RuleSet` as *rules*
    restores the WATCH rules and their alert counters (version >= 3
    snapshots; older files simply have none).
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _HEADER.size + 4:
        raise StorageError(f"{path}: too short to be a snapshot")
    crc_stored = _U32.unpack(raw[-4:])[0]
    if (zlib.crc32(raw[:-4]) & 0xFFFFFFFF) != crc_stored:
        raise StorageError(f"{path}: snapshot CRC mismatch")
    r = _SnapReader(raw[:-4])
    magic, version, _pad, n_metrics, seq = r.unpack(_HEADER, "header")
    if magic != _MAGIC:
        raise StorageError(f"{path}: bad magic {magic!r}: not a snapshot")
    if version not in (1, 2, SNAPSHOT_VERSION):
        raise StorageError(f"{path}: unsupported snapshot version {version}")
    for _ in range(n_metrics):
        name = r.string("metric name")
        kind_id = r.take(1, "metric kind")[0]
        if kind_id not in (0, 1):
            raise StorageError(f"{path}: unknown metric kind id {kind_id}")
        kind = "fixed" if kind_id == 0 else "adaptive"
        (epsilon,) = r.unpack(_F64, "epsilon")
        (n_raw,) = r.unpack(_U64, "n")
        n: Optional[int] = None if n_raw == 0 else n_raw
        policy = r.string("policy")
        engine = "paper"
        if version >= 2:
            engine_id = r.take(1, "sketch engine")[0]
            if engine_id not in _ENGINE_NAMES:
                raise StorageError(
                    f"{path}: unknown sketch engine id {engine_id}"
                )
            engine = _ENGINE_NAMES[engine_id]
        window_s = slide_s = decay_s = 0.0
        if version >= 3:
            wmode = r.take(1, "window mode")[0]
            (p1,) = r.unpack(_F64, "window p1")
            (p2,) = r.unpack(_F64, "window p2")
            if wmode == _WMODE_WINDOW:
                window_s, slide_s = p1, p2
            elif wmode == _WMODE_DECAY:
                decay_s = p1
            elif wmode != _WMODE_NONE:
                raise StorageError(f"{path}: unknown window mode {wmode}")
        sketch: object
        if window_s or decay_s:
            from ..core.engines import loads_any

            (size,) = r.unpack(_U32, "ring payload size")
            sketch = loads_any(bytes(r.take(size, "ring payload")))
        elif engine == "kll":
            (size,) = r.unpack(_U32, "kll payload size")
            sketch = KLLSketch.from_bytes(r.take(size, "kll payload"))
        elif engine == "frugal":
            (size,) = r.unpack(_U32, "frugal payload size")
            sketch = FrugalSketch.from_bytes(r.take(size, "frugal payload"))
        elif kind == "fixed":
            sketch = _load_framework(r, "framework payload")
        else:
            sketch = _load_adaptive(r, epsilon, policy)
        registry.register_restored(
            name, kind, epsilon, n, policy, sketch, engine,
            window_s, slide_s, decay_s,
        )
    if version >= 3:
        from .protocol import _RULE_OP_NAMES

        (n_rules,) = r.unpack(_U32, "rule count")
        for _ in range(n_rules):
            rule_id = r.string("rule id")
            metric = r.string("rule metric")
            (phi,) = r.unpack(_F64, "rule phi")
            op_id = r.take(1, "rule operator")[0]
            if op_id not in _RULE_OP_NAMES:
                raise StorageError(
                    f"{path}: unknown rule operator id {op_id}"
                )
            (threshold,) = r.unpack(_F64, "rule threshold")
            (definite_total,) = r.unpack(_U64, "definite total")
            (possible_total,) = r.unpack(_U64, "possible total")
            if rules is not None:
                rules.add(
                    rule_id, metric, phi, _RULE_OP_NAMES[op_id], threshold
                )
                rules.restore_counters(
                    rule_id, definite_total, possible_total
                )
    if r.pos != len(r.buf):
        raise StorageError(f"{path}: trailing bytes after snapshot payload")
    return seq
