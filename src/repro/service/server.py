"""The asyncio quantile-sketch server.

One process, one event loop, ``n_shards`` batching domains.  Connection
handlers decode frames and translate them into registry operations; they
never touch sketch internals.  The ingest path is::

    frame in -> validate batch -> journal append (WAL) -> enqueue on the
    metric's shard -> ack           (sketch not yet updated)

    shard flusher (one task per shard) -> drains the queue through
    SketchBank.extend_pairs          (vectorised, batched across
                                      connections and metrics)

The receive path is zero-copy and coalescing: each scheduling slot of a
connection handler reads one large chunk off the stream, parses *every*
complete frame in it, and dispatches them back to back -- INGEST value
arrays are ``np.frombuffer`` views into the chunk (no per-batch copy;
the view pins the chunk until the shard flusher applies it), and the
acks for the whole chunk are written in one ``write`` + one ``drain``.
Each frame is still dispatched individually, in order, through the same
journal/dedup/ack pipeline, so idempotency-token semantics and the
journal-order-is-apply-order invariant are untouched; only the syscall
and copy count per frame changes.  Pipelined INGESTs that share a chunk
land in the shard queue together and are applied by one
``apply_shard`` call.

Because handlers run on one loop, every mutation is serial: the journal
order *is* the apply order, queries never observe a half-applied batch,
and snapshots capture a consistent image by draining the shard queues
first.  Queries flush the owning shard's queue synchronously before
answering, so a client always reads its own acknowledged writes.

Durability: pass ``data_dir`` to enable the journal + snapshot pair
(see :mod:`repro.service.journal` / :mod:`repro.service.snapshot`);
recovery happens automatically in :meth:`QuantileService.start`.
Without a ``data_dir`` the server is a purely in-memory cache.

Resilience (tested by the fault-injection harness in
:mod:`repro.service.faults`):

* mutating requests carry idempotency tokens which are journaled and
  checked against the registry's dedup window, so a client retrying an
  INGEST after a lost ack is applied exactly once -- including across a
  crash, because recovery re-records the tokens it replays;
* each connection is bounded by ``max_inflight_bytes`` of queued ingest
  payload: past the limit the handler drains the shards synchronously
  before reading more frames, so a fast producer cannot balloon the
  pending queues;
* a graceful stop (``SIGTERM`` under ``repro serve``) drains: the
  listener closes, connections finish their in-flight frame and are
  then shut, every queued batch is applied, a final snapshot is written
  and the journal is closed -- nothing new is acknowledged once the
  drain begins.

:class:`ServerThread` embeds the whole server in a background thread for
tests, examples and benchmarks; ``repro serve`` runs it in the
foreground.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from ..core.errors import ReproError, StorageError
from ..obs import hooks as obs_hooks
from ..obs.exposition import render_prometheus
from . import protocol
from .journal import (
    CREATE_RECORD,
    INGEST_AT_RECORD,
    INGEST_RECORD,
    RESTORE_RECORD,
    UNWATCH_RECORD,
    WATCH_RECORD,
    IngestJournal,
    read_journal,
)
from .metrics import ServiceMetrics
from .registry import SketchRegistry
from .rules import RuleSet
from .snapshot import read_snapshot, write_snapshot

__all__ = ["QuantileService", "ServerThread"]

SNAPSHOT_FILE = "snapshot.bin"
JOURNAL_FILE = "journal.log"

#: how much a connection handler tries to slurp per scheduling slot; the
#: whole chunk is parsed and dispatched as one coalesced batch
READ_CHUNK = 4 * 1024 * 1024

#: kernel receive buffer requested per accepted connection.  While the
#: flusher applies a coalesced batch the event loop performs no reads,
#: so the socket buffer is the *only* pipelining depth the client gets;
#: the ~208 KiB default stalls a pipelined sender after ~6 batches of
#: 4096 float64s.  The kernel caps this at ``net.core.rmem_max``.
SOCK_RCVBUF = 4 * 1024 * 1024


class QuantileService:
    """A sharded, durable quantile-sketch server.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    path:
        Listen on a ``AF_UNIX`` stream socket at this filesystem path
        instead of TCP (``host``/``port`` are then ignored).  Same wire
        format, same semantics -- a local fast path that skips the
        loopback TCP stack (roughly 2-3x the raw stream bandwidth on
        one core, which matters once the protocol cost is down in the
        noise).  A stale socket file from a dead process is replaced.
    data_dir:
        Directory for the snapshot + journal pair.  ``None`` disables
        durability.
    n_shards:
        Batching domains (each backed by a
        :class:`~repro.core.bank.SketchBank`).
    snapshot_interval_s:
        Period of the automatic snapshot task (``None`` = only explicit
        ``SNAPSHOT`` commands and graceful shutdown snapshot).
    fsync:
        Journal durability mode -- ``False`` flushes (survives process
        kill), ``True`` fsyncs every batch (survives power loss).
    batch_window_s:
        How long a shard flusher waits after waking before draining its
        queue; ``0`` still batches everything enqueued in the same event
        loop iteration.
    max_inflight_bytes:
        Per-connection backpressure bound: once a connection has this
        many bytes of ingest payload queued but not yet applied, the
        handler drains the shards synchronously before reading the next
        frame.
    drain_grace_s:
        How long a graceful stop waits for open connections to finish
        their in-flight frame before forcibly closing them.
    clock:
        Event-time source (``() -> float`` seconds) used to stamp
        ingests into windowed metrics and to drive WATCH evaluation.
        ``None`` means ``time.time``.  Tests inject a synthetic clock
        here to make window expiry and alert firing deterministic.
    watch_interval_s:
        Period of the WATCH scheduler task (``None`` or ``0`` disables
        it; rules are then only evaluated by ``ALERTS evaluate=1``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        path: Optional[str] = None,
        data_dir: Optional[str] = None,
        n_shards: int = 4,
        snapshot_interval_s: Optional[float] = 30.0,
        fsync: bool = False,
        batch_window_s: float = 0.0,
        max_inflight_bytes: int = 32 * 1024 * 1024,
        drain_grace_s: float = 2.0,
        observability: bool = True,
        node_id: str = "",
        cluster_epoch: int = 0,
        clock: Optional[Any] = None,
        watch_interval_s: Optional[float] = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        #: route metadata reported by PING: which cluster node this
        #: process is (empty for a standalone server) and the manifest
        #: epoch it was launched under
        self.node_id = node_id
        self.cluster_epoch = cluster_epoch
        self.path = path
        self.data_dir = data_dir
        self.n_shards = n_shards
        self.snapshot_interval_s = snapshot_interval_s
        self.fsync = fsync
        self.batch_window_s = batch_window_s
        self.max_inflight_bytes = max_inflight_bytes
        self.drain_grace_s = drain_grace_s
        self.observability = observability
        self._clock = clock or time.time
        self.watch_interval_s = watch_interval_s
        self.registry = SketchRegistry(n_shards, clock=self._clock)
        self.rules = RuleSet()
        self.metrics = ServiceMetrics(n_shards)
        self.journal: Optional[IngestJournal] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shard_events: List[asyncio.Event] = []
        self._tasks: List[asyncio.Task] = []
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._draining = False
        self._stopped = False

    # -- recovery ----------------------------------------------------------

    @property
    def snapshot_path(self) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, SNAPSHOT_FILE)

    @property
    def journal_path(self) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, JOURNAL_FILE)

    def _recover(self) -> None:
        """Rebuild state from snapshot + journal tail (idempotent)."""
        assert self.data_dir is not None
        os.makedirs(self.data_dir, exist_ok=True)
        seq = 0
        snapshot_path = self.snapshot_path
        if snapshot_path and os.path.exists(snapshot_path):
            seq = read_snapshot(snapshot_path, self.registry, self.rules)
        journal_path = self.journal_path
        assert journal_path is not None
        replayed = 0
        if os.path.exists(journal_path):
            scan = read_journal(journal_path)
            for rec in scan.records:
                if rec.seq <= seq:
                    continue  # already inside the snapshot
                if rec.type == CREATE_RECORD:
                    self.registry.create(
                        rec.name,
                        kind=rec.kind,
                        epsilon=rec.epsilon,
                        n=rec.n,
                        policy=rec.policy,
                        engine=rec.engine,
                        window_s=rec.window_s,
                        slide_s=rec.slide_s,
                        decay_s=rec.decay_s,
                    )
                    self.registry.dedup.record(rec.token, {"created": True})
                elif rec.type == INGEST_AT_RECORD:
                    assert rec.values is not None
                    # replay at the *journaled* event time, not the
                    # recovery wall clock: ring placement is a pure
                    # function of (values, t), so the rebuilt window is
                    # bit-identical to the pre-crash one
                    self.registry.ingest_at(rec.name, rec.values, rec.t)
                    self.registry.dedup.record(
                        rec.token,
                        {"seq": rec.seq, "count": int(rec.values.size)},
                    )
                elif rec.type == WATCH_RECORD:
                    added = self.rules.add(
                        rec.name, rec.metric, rec.phi, rec.rule_op,
                        rec.threshold,
                    )
                    self.registry.dedup.record(rec.token, {"added": added})
                elif rec.type == UNWATCH_RECORD:
                    removed = self.rules.remove(rec.name)
                    self.registry.dedup.record(
                        rec.token, {"removed": removed}
                    )
                elif rec.type == INGEST_RECORD:
                    assert rec.values is not None
                    self.registry.ingest(rec.name, rec.values)
                    # re-arm the dedup window: a client that lost its ack
                    # to the crash may retry this very batch
                    self.registry.dedup.record(
                        rec.token,
                        {"seq": rec.seq, "count": int(rec.values.size)},
                    )
                elif rec.type == RESTORE_RECORD:
                    # a full-state install subsumes every earlier record
                    # for the metric: replaying them first and replacing
                    # wholesale here reproduces the live apply order
                    replaced = self.registry.install_serialized(
                        rec.name,
                        kind=rec.kind,
                        epsilon=rec.epsilon,
                        n=rec.n,
                        policy=rec.policy,
                        engine=rec.engine,
                        payload=rec.payload,
                    )
                    self.registry.dedup.record(
                        rec.token, {"replaced": replaced, "seq": rec.seq}
                    )
                replayed += 1
        self.metrics.recovered_records = replayed
        # opening the journal truncates any torn tail and resumes the
        # sequence after the last surviving record
        self.journal = IngestJournal(
            journal_path, start_seq=seq, fsync=self.fsync
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Recover, bind the socket and launch the background tasks."""
        if self.observability:
            # turn on core instrumentation so STATS can report per-level
            # collapse counts and the live certified bound per metric
            obs_hooks.enable()
        if self.data_dir is not None:
            self._recover()
        self._shard_events = [asyncio.Event() for _ in range(self.n_shards)]
        for i in range(self.n_shards):
            self._tasks.append(
                asyncio.create_task(self._shard_flusher(i))
            )
        if self.data_dir is not None and self.snapshot_interval_s:
            self._tasks.append(asyncio.create_task(self._snapshotter()))
        if self.watch_interval_s:
            self._tasks.append(asyncio.create_task(self._watcher()))
        # a large stream buffer lets one scheduling slot of the reader
        # task slurp many pipelined ingest frames, so the shard flusher
        # sees them as a single vectorized super-batch (the default 64 KiB
        # limit caps that at two 4096-value batches per slot)
        if self.path is not None:
            if os.path.exists(self.path):
                os.unlink(self.path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path,
                limit=8 * 1024 * 1024,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=8 * 1024 * 1024,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, *, graceful: bool = True) -> None:
        """Shut down.

        ``graceful=True`` drains: stop accepting connections, let every
        open connection finish the frame it is processing (bounded by
        ``drain_grace_s``; nothing new is acknowledged once the drain
        begins), apply all queued batches, write a final snapshot (when
        durable) and close the journal.  ``graceful=False`` skips all of
        that -- the in-process equivalent of ``SIGKILL``, used by the
        crash-recovery tests: whatever the journal already holds is what
        recovery gets.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.path is not None:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        if graceful and self._conn_tasks:
            # handlers notice _draining after answering their in-flight
            # frame and close; idle connections sit in read() and are
            # cancelled after the grace window
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_grace_s
            while self._conn_tasks and loop.time() < deadline:
                await asyncio.sleep(0.01)
        for task in list(self._conn_tasks) + self._tasks:
            task.cancel()
        for task in list(self._conn_tasks) + self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        if graceful:
            self.registry.apply_all()
            if self.data_dir is not None and self.journal is not None:
                self._write_snapshot()
                self.journal.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- background tasks --------------------------------------------------

    async def _shard_flusher(self, shard: int) -> None:
        event = self._shard_events[shard]
        while True:
            await event.wait()
            event.clear()
            # let every connection with buffered frames enqueue first so
            # the drain below sees one large cross-connection super-batch
            if self.batch_window_s:
                await asyncio.sleep(self.batch_window_s)
            else:
                await asyncio.sleep(0)
            self.registry.apply_shard(shard)

    async def _snapshotter(self) -> None:
        assert self.snapshot_interval_s is not None
        while True:
            await asyncio.sleep(self.snapshot_interval_s)
            self._write_snapshot()

    async def _watcher(self) -> None:
        """The WATCH scheduler: evaluate every rule each tick.

        Sleeps on the *event loop* clock but evaluates at the *injected*
        clock, so tests drive alert timing by advancing the synthetic
        clock between (real, short) ticks.  Runs on the loop like every
        request handler, so an evaluation never observes a half-applied
        batch.
        """
        assert self.watch_interval_s
        while True:
            await asyncio.sleep(self.watch_interval_s)
            if len(self.rules):
                self.rules.evaluate(self.registry, self._clock())

    def _write_snapshot(self) -> str:
        assert self.journal is not None and self.snapshot_path is not None
        self.registry.apply_all()
        write_snapshot(
            self.snapshot_path, self.registry, self.journal.seq,
            rules=self.rules,
        )
        self.journal.rotate(self.journal.seq)
        self.metrics.snapshots += 1
        return self.snapshot_path

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_RCVBUF, SOCK_RCVBUF
                )
            except OSError:  # pragma: no cover - platform-dependent cap
                pass
        self.metrics.connections_total += 1
        self.metrics.connections_open += 1
        inflight_bytes = 0  # queued-but-unapplied ingest payload
        tail = b""  # partial frame carried across read chunks
        try:
            while not self._draining:
                try:
                    chunk = await reader.read(READ_CHUNK)
                except ConnectionError:
                    break
                if not chunk:
                    break
                # joining only costs when a frame straddled the previous
                # chunk, and then only the straddle region is re-copied
                data = tail + chunk if tail else chunk
                n = len(data)
                pos = 0
                acks: List[bytes] = []
                oversize = False
                while n - pos >= 4:
                    length = int.from_bytes(data[pos : pos + 4], "little")
                    if length > protocol.MAX_FRAME_BYTES:
                        acks.append(
                            protocol.frame(
                                protocol.encode_error(
                                    f"frame length {length} exceeds limit"
                                )
                            )
                        )
                        oversize = True
                        break
                    if n - pos - 4 < length:
                        break
                    # zero-copy dispatch: the payload -- and, for
                    # INGEST, its value array -- is a view into `data`
                    payload = memoryview(data)[pos + 4 : pos + 4 + length]
                    pos += 4 + length
                    if length and payload[0] == protocol.Opcode.INGEST:
                        inflight_bytes += length
                    acks.append(protocol.frame(self._dispatch(payload)))
                # a frame bigger than the read chunk can never complete
                # inside the loop above: finish it with one exact read
                if not oversize and n - pos >= 4:
                    need = (
                        4
                        + int.from_bytes(data[pos : pos + 4], "little")
                        - (n - pos)
                    )
                    if need > READ_CHUNK:
                        try:
                            rest = await reader.readexactly(need)
                        except (
                            asyncio.IncompleteReadError,
                            ConnectionError,
                        ):
                            rest = None
                        if rest is None:
                            if acks:
                                self.metrics.record_coalesce(len(acks))
                                writer.write(b"".join(acks))
                                await writer.drain()
                            break
                        whole = data[pos:] + rest
                        payload = memoryview(whole)[4:]
                        if len(payload) and (
                            payload[0] == protocol.Opcode.INGEST
                        ):
                            inflight_bytes += len(payload)
                        acks.append(protocol.frame(self._dispatch(payload)))
                        pos = n
                tail = data[pos:] if pos < n else b""
                if acks:
                    self.metrics.record_coalesce(len(acks))
                    writer.write(b"".join(acks))
                    await writer.drain()
                if oversize:
                    break
                if inflight_bytes >= self.max_inflight_bytes:
                    # backpressure: this connection has pushed more
                    # pending payload than allowed -- apply it before
                    # reading (and thereby acking) anything further
                    if self.registry.pending_batches():
                        self.registry.apply_all()
                        self.metrics.backpressure_flushes += 1
                    inflight_bytes = 0
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self.metrics.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _dispatch(self, payload: bytes) -> bytes:
        try:
            req = protocol.decode_request(payload)
            return protocol.encode_ok(req.opcode, self._execute(req))
        except ReproError as exc:
            return protocol.encode_error(str(exc))
        except Exception as exc:  # noqa: BLE001 - a bug must not kill
            # the connection: an unhandled error here would close the
            # socket mid-stream, which a resilient client reads as a
            # transport fault and retries forever against the same bug
            return protocol.encode_error(f"internal error: {exc!r}")

    def _execute(self, req: protocol.Request) -> Dict[str, Any]:
        """Run one request, self-metering its wall time per opcode.

        Every opcode -- not just queries -- lands in a per-op
        :class:`~repro.obs.metrics.TimingSketch`, so STATS reports
        p50/p99 latency per operation with a certified rank bound.
        """
        op_name = protocol.Opcode._NAMES.get(req.opcode, str(req.opcode))
        start = time.perf_counter()
        try:
            return self._execute_op(req)
        finally:
            self.metrics.record_op(op_name, time.perf_counter() - start)

    def _execute_op(self, req: protocol.Request) -> Dict[str, Any]:
        op = req.opcode
        if op == protocol.Opcode.INGEST:
            return self._do_ingest(req)
        if op == protocol.Opcode.QUERY:
            start = time.perf_counter()
            self.registry.apply_shard(self.registry.get(req.name).shard)
            values, bound, n = self.registry.quantiles(req.name, req.phis)
            self.metrics.record_query(time.perf_counter() - start)
            return {"values": values, "error_bound": bound, "n": n}
        if op == protocol.Opcode.CDF:
            start = time.perf_counter()
            self.registry.apply_shard(self.registry.get(req.name).shard)
            rank, fraction, bound, n = self.registry.cdf(req.name, req.value)
            self.metrics.record_query(time.perf_counter() - start)
            return {
                "rank": rank,
                "fraction": fraction,
                "error_bound": bound,
                "n": n,
            }
        if op == protocol.Opcode.CREATE:
            if req.token:
                hit = self.registry.dedup.get(req.token)
                if hit is not None:
                    return hit
            entry, created = self.registry.create(
                req.name,
                kind=req.kind,
                epsilon=req.epsilon,
                n=req.n,
                policy=req.policy,
                engine=req.engine,
                window_s=req.window_s,
                slide_s=req.slide_s,
                decay_s=req.decay_s,
            )
            if created and self.journal is not None:
                self.journal.append_create(
                    req.name, req.kind, req.epsilon, req.n, req.policy,
                    token=req.token, engine=req.engine,
                    window_s=req.window_s, slide_s=req.slide_s,
                    decay_s=req.decay_s,
                )
            result = {"created": created}
            self.registry.dedup.record(req.token, result)
            return result
        if op == protocol.Opcode.LIST:
            return {"metrics": self.registry.describe_metrics()}
        if op == protocol.Opcode.FETCH:
            self.registry.apply_shard(self.registry.get(req.name).shard)
            return {"payload": self.registry.fetch_serialized(req.name)}
        if op == protocol.Opcode.SYNCPULL:
            return self._do_syncpull(req)
        if op == protocol.Opcode.RESTORE:
            return self._do_restore(req)
        if op == protocol.Opcode.SNAPSHOT:
            if self.journal is None:
                raise StorageError(
                    "durability is disabled (server started without "
                    "--data-dir); nothing to snapshot"
                )
            if req.token:
                hit = self.registry.dedup.get(req.token)
                if hit is not None:
                    return hit
            path = self._write_snapshot()
            result = {"seq": self.journal.seq, "path": path}
            self.registry.dedup.record(req.token, result)
            return result
        if op == protocol.Opcode.DRAIN:
            self.registry.apply_all()
            return {"seq": self.journal.seq if self.journal else 0}
        if op == protocol.Opcode.STATS:
            stats = self.metrics.to_dict(self.registry, self.rules)
            stats["engines"] = self.registry.engine_counts()
            if self.node_id:
                stats["node_id"] = self.node_id
                stats["cluster_epoch"] = self.cluster_epoch
            if req.detail:
                stats["prometheus"] = render_prometheus(obs_hooks.registry())
            return {"stats": stats}
        if op == protocol.Opcode.PING:
            return {
                "node_id": self.node_id,
                "epoch": self.cluster_epoch,
                "uptime_s": self.metrics.uptime_s(),
                "n_metrics": len(self.registry),
                "elements": self.metrics.ingest_elements,
            }
        if op == protocol.Opcode.WATCH:
            if req.token:
                hit = self.registry.dedup.get(req.token)
                if hit is not None:
                    return hit
            added = self.rules.add(
                req.name, req.metric, req.phi, req.rule_op, req.threshold
            )
            if added and self.journal is not None:
                self.journal.append_watch(
                    req.name, req.metric, req.phi, req.rule_op,
                    req.threshold, token=req.token,
                )
            result = {"added": added}
            self.registry.dedup.record(req.token, result)
            return result
        if op == protocol.Opcode.UNWATCH:
            if req.token:
                hit = self.registry.dedup.get(req.token)
                if hit is not None:
                    return hit
            removed = self.rules.remove(req.name)
            if removed and self.journal is not None:
                self.journal.append_unwatch(req.name, token=req.token)
            result = {"removed": removed}
            self.registry.dedup.record(req.token, result)
            return result
        if op == protocol.Opcode.ALERTS:
            if req.detail:
                # evaluate-now: one on-demand scheduler tick, same code
                # path (and the same certified classification) as the
                # background watcher
                return {
                    "alerts": self.rules.evaluate(
                        self.registry, self._clock()
                    )
                }
            return {"alerts": self.rules.describe()}
        raise StorageError(f"unknown opcode {op}")

    def _do_syncpull(self, req: protocol.Request) -> Dict[str, Any]:
        """One atomic donor-side view for the re-sync protocol.

        Returns the metric's configuration, its *current* full serialized
        payload, and the journal tail of INGEST records for it after
        ``req.after_seq`` -- all computed inside one dispatch, so they
        are mutually consistent: applying the tail on top of the caller's
        ``after_seq`` state must reproduce the payload bit-for-bit.

        ``rebase`` is set when the tail cannot be produced (no journal,
        rotation discarded it, or a RESTORE record sits inside it): the
        caller must discard its partial state and install the full
        payload instead.
        """
        entry = self.registry.get(req.name)
        self.registry.apply_shard(entry.shard)
        payload = self.registry.fetch_serialized(req.name)
        seq_now = self.journal.seq if self.journal is not None else 0
        rebase = False
        records: List[Any] = []
        if req.after_seq:
            journal_path = self.journal_path
            if (
                self.journal is None
                or journal_path is None
                or not os.path.exists(journal_path)
                or self.journal.start_seq > req.after_seq
                or req.after_seq > seq_now
            ):
                rebase = True
            else:
                # safe mid-serve: one request runs per event-loop slot,
                # and appends flush whole records, so the file holds a
                # valid prefix ending at seq_now
                scan = read_journal(journal_path)
                for rec in scan.records:
                    if rec.name != req.name or rec.seq <= req.after_seq:
                        continue
                    if rec.type == RESTORE_RECORD:
                        # the tail is not pure deltas: this donor was
                        # itself re-synced past the caller's position
                        rebase = True
                        records = []
                        break
                    if rec.type == INGEST_AT_RECORD:
                        # plain SYNCPULL records carry no event times;
                        # replaying a windowed batch without its stamp
                        # would place it in the wrong bucket.  Full
                        # payload install is always correct.
                        rebase = True
                        records = []
                        break
                    if rec.type == INGEST_RECORD:
                        records.append((rec.seq, rec.token, rec.values))
        return {
            "rebase": rebase,
            "kind": entry.kind,
            "epsilon": entry.epsilon,
            "n": entry.n,
            "policy": entry.policy,
            "engine": entry.engine,
            "window_s": entry.window_s,
            "slide_s": entry.slide_s,
            "decay_s": entry.decay_s,
            "seq": seq_now,
            "payload": payload,
            "records": records,
        }

    def _do_restore(self, req: protocol.Request) -> Dict[str, Any]:
        """Install a metric's full state from a donor payload."""
        if req.token:
            hit = self.registry.dedup.get(req.token)
            if hit is not None:
                return hit
        # flush pending batches first so the live path matches recovery
        # replay: records journaled before this RESTORE are applied and
        # then subsumed wholesale by the install
        self.registry.apply_all()
        replaced = self.registry.install_serialized(
            req.name,
            kind=req.kind,
            epsilon=req.epsilon,
            n=req.n,
            policy=req.policy,
            engine=req.engine,
            payload=req.payload,
        )
        if self.journal is not None:
            seq = self.journal.append_restore(
                req.name, req.kind, req.epsilon, req.n, req.policy,
                req.engine, req.payload, token=req.token,
            )
        else:
            seq = 0
        result = {"replaced": replaced, "seq": seq}
        self.registry.dedup.record(req.token, result)
        return result

    def _do_ingest(self, req: protocol.Request) -> Dict[str, Any]:
        assert req.values is not None
        if req.token:
            hit = self.registry.dedup.get(req.token)
            if hit is not None:
                # a retry of a batch whose ack was lost: replay the
                # recorded ack, apply nothing (exactly-once)
                return hit
        entry = self.registry.get(req.name)  # unknown metric -> error frame
        arr = self.registry.coerce_batch(req.values)
        if arr.size == 0:
            result = {
                "seq": self.journal.seq if self.journal else 0,
                "count": 0,
            }
            self.registry.dedup.record(req.token, result)
            return result
        if entry.windowed:
            # stamp the arrival time once, here, and journal it with the
            # batch: ring placement is then a pure function of the
            # journal, so crash replay rebuilds the same window
            t = float(self._clock())
            if self.journal is not None:
                seq = self.journal.append_ingest_at(
                    req.name, arr, t, token=req.token
                )
            else:
                seq = 0
            self.registry.enqueue_at(req.name, arr, t, validated=True)
        else:
            if self.journal is not None:
                seq = self.journal.append_ingest(
                    req.name, arr, token=req.token
                )
            else:
                seq = 0
            self.registry.enqueue(req.name, arr, validated=True)
        self.metrics.record_ingest(entry.shard, arr.size)
        self._shard_events[entry.shard].set()
        result = {"seq": seq, "count": int(arr.size)}
        self.registry.dedup.record(req.token, result)
        return result


class ServerThread:
    """A :class:`QuantileService` running on a background event loop.

    The embedding used by tests, benchmarks and the example monitor::

        with ServerThread(data_dir="./data") as server:
            client = QuantileClient("127.0.0.1", server.port)

    ``stop(graceful=False)`` abandons the process-internal state without
    the final snapshot -- the closest in-process approximation of
    ``SIGKILL`` (the journal file already holds every acknowledged
    batch, exactly as it would after a real kill).
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.service = QuantileService(**service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def path(self) -> Optional[str]:
        return self.service.path

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise StorageError("service failed to start within timeout")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, *, graceful: bool = True, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(graceful=graceful), loop
        )
        try:
            future.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
