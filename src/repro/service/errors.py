"""Typed transport errors for the service client.

The client used to leak raw ``OSError``/``socket.timeout`` to callers,
which made "the network hiccuped" indistinguishable from "you passed a
bad path" and impossible to retry selectively.  These types split the
failure modes:

* :class:`ServiceConnectionError` -- the TCP connection failed, was
  reset, or died mid-frame.  Retryable: with idempotency tokens on
  mutating requests (the default), the client's reconnect/backoff loop
  resends safely and the server's dedup window guarantees
  exactly-once application.
* :class:`ServiceTimeoutError` -- the per-request deadline expired
  (including time burnt in backoff between retries).  Terminal for that
  request; the request may or may not have been applied, but re-issuing
  it with the same client is still safe because the idempotency token
  is preserved per attempt, never per call site.

Both derive from :class:`~repro.core.errors.ReproError` (one
``except`` catches all library failures) *and* from the matching
builtin (``ConnectionError`` / ``TimeoutError``) so generic network
handling keeps working.
"""

from __future__ import annotations

from ..core.errors import ReproError

__all__ = [
    "ServiceError",
    "ServiceConnectionError",
    "ServiceTimeoutError",
]


class ServiceError(ReproError):
    """Base class for service-transport failures."""


class ServiceConnectionError(ServiceError, ConnectionError):
    """The connection to the server failed, reset, or died mid-frame.

    Safe to retry: mutating requests carry idempotency tokens, so a
    resend after a lost ack is applied exactly once server-side.
    """


class ServiceTimeoutError(ServiceError, TimeoutError):
    """The per-request deadline expired (connect, send, recv or backoff)."""
