"""Append-only ingest journal with torn-tail detection.

Write-ahead discipline: the server appends a record for every accepted
mutation (metric CREATE, ingest batch) *before* applying it to the
in-memory sketches, and flushes the file so the bytes survive a process
kill (``SIGKILL`` keeps OS page-cache writes; only power loss needs the
optional ``fsync`` mode).  Recovery replays the journal on top of the
latest snapshot; because the registry's batched bank ingest is
bit-identical to feeding each sketch its subsequence one record at a
time (the PR-2 SketchBank property), replay reproduces the pre-crash
summaries exactly.

File layout (little-endian)::

    header:  magic "MRLJRN01" | u16 version | 6 pad bytes | u64 start_seq
    record:  u32 crc32 | u32 body_len | body
    body:    u64 seq | u8 type | u64 token | type-specific payload

    type 1 = CREATE:    name (u16 len + utf8) | u8 kind | f64 epsilon
                        | u64 n (0 = unset) | policy (u16 len + utf8)
                        | [u8 engine]  (optional trailing; absent = paper)
                        | [u8 wmode | f64 p1 | f64 p2]  (optional window
                          config; the engine byte is forced when present.
                          wmode 1 = window: p1 = window seconds, p2 =
                          slide seconds; wmode 2 = decay: p1 = half-life)
    type 2 = INGEST:    name (u16 len + utf8) | u32 count | count * f64
    type 3 = RESTORE:   name (u16 len + utf8) | u8 kind | f64 epsilon
                        | u64 n (0 = unset) | policy (u16 len + utf8)
                        | u8 engine | u32 payload_len | payload
    type 4 = INGEST_AT: name (u16 len + utf8) | f64 event_time
                        | u32 count | count * f64
    type 5 = WATCH:     rule_id (u16 len + utf8) | metric (u16 len +
                        utf8) | f64 phi | u8 op | f64 threshold
    type 6 = UNWATCH:   rule_id (u16 len + utf8)

An INGEST_AT record carries the batch's *event time*: windowed/decayed
metrics bucket by timestamp, so the journal pins the time each batch was
stamped with at ingest -- replay reproduces the ring bit-identically no
matter when recovery runs.  WATCH/UNWATCH make the rule set itself
replayable state, exactly like metric CREATEs.

A RESTORE record carries the complete serialised engine payload a
re-sync installed (see the cluster recovery protocol): on replay it
*replaces* the metric's sketch wholesale, so stale pre-crash INGEST
records earlier in the journal are subsumed, and tail INGESTs after it
re-apply on top -- the replayed state is bit-identical to the synced
one.

``token`` is the client-supplied idempotency token the mutation arrived
with (0 when the client sent none).  Recovery replays it into the
registry's dedup window, so a client retrying a batch whose ack was
lost to a crash is still deduplicated after restart -- version 2 of the
format added this field.

``crc32`` covers the body.  A crash can only tear the *last* record
(appends are sequential), so the reader stops at the first record whose
header is short, whose body is short, or whose CRC mismatches -- and
reports the byte offset of the valid prefix, which the server truncates
to on recovery.  Corruption *before* the tail (bit rot, manual edits) is
distinguishable because valid records follow the broken one; the reader
treats any mid-file damage the same way but surfaces it via
``JournalScan.damaged`` so operators can tell torn tails from rot.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.errors import StorageError

__all__ = [
    "IngestJournal",
    "JournalRecord",
    "JournalScan",
    "read_journal",
    "CREATE_RECORD",
    "INGEST_RECORD",
    "RESTORE_RECORD",
    "INGEST_AT_RECORD",
    "WATCH_RECORD",
    "UNWATCH_RECORD",
]

_MAGIC = b"MRLJRN01"
_VERSION = 2
_FILE_HEADER = struct.Struct("<8sH6xQ")
_RECORD_HEADER = struct.Struct("<II")
_SEQ_TYPE = struct.Struct("<QBQ")  # seq | record type | idempotency token
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

CREATE_RECORD = 1
INGEST_RECORD = 2
RESTORE_RECORD = 3
INGEST_AT_RECORD = 4
WATCH_RECORD = 5
UNWATCH_RECORD = 6

#: guard against a corrupt length field allocating unbounded memory
_MAX_RECORD_BYTES = 256 * 1024 * 1024


@dataclass
class JournalRecord:
    """One replayable mutation."""

    seq: int
    type: int
    name: str
    # CREATE fields
    kind: str = "fixed"
    epsilon: float = 0.01
    n: Optional[int] = None
    policy: str = "new"
    # INGEST field
    values: Optional[np.ndarray] = None
    # RESTORE field: the full serialised engine payload installed
    payload: bytes = b""
    #: idempotency token the mutation carried (0 = none)
    token: int = 0
    #: CREATE sketch engine (encoded as an optional trailing byte, so
    #: pre-engine journals replay unchanged as "paper")
    engine: str = "paper"
    # CREATE window/decay config (0 = plain all-time metric)
    window_s: float = 0.0
    slide_s: float = 0.0
    decay_s: float = 0.0
    #: INGEST_AT event time (seconds)
    t: float = 0.0
    # WATCH rule fields (``name`` carries the rule id)
    metric: str = ""
    phi: float = 0.0
    rule_op: str = ">"
    threshold: float = 0.0


@dataclass
class JournalScan:
    """Result of reading a journal file."""

    start_seq: int  #: sequence number the journal begins after
    records: List[JournalRecord]
    valid_bytes: int  #: offset of the last fully-valid record's end
    damaged: bool  #: True when bytes beyond ``valid_bytes`` existed


def _encode_create(
    name: str,
    kind: str,
    epsilon: float,
    n: Optional[int],
    policy: str,
    engine: str = "paper",
    window_s: float = 0.0,
    slide_s: float = 0.0,
    decay_s: float = 0.0,
) -> bytes:
    from .protocol import (
        WMODE_DECAY,
        WMODE_WINDOW,
        _ENGINE_IDS,
        _KIND_IDS,
        _pack_str,
    )

    body = (
        _pack_str(name)
        + bytes([_KIND_IDS[kind]])
        + _F64.pack(epsilon)
        + _U64.pack(0 if n is None else int(n))
        + _pack_str(policy)
    )
    windowed = bool(window_s or decay_s)
    if engine != "paper" or windowed:
        body += bytes([_ENGINE_IDS[engine]])
    if windowed:
        # same block as the CREATE opcode: the engine byte is forced
        # (even for paper) so the decode order stays unambiguous
        if window_s:
            body += bytes([WMODE_WINDOW])
            body += _F64.pack(window_s)
            body += _F64.pack(slide_s or window_s)
        else:
            body += bytes([WMODE_DECAY])
            body += _F64.pack(decay_s)
            body += _F64.pack(0.0)
    return body


def _encode_restore(
    name: str,
    kind: str,
    epsilon: float,
    n: Optional[int],
    policy: str,
    engine: str,
    payload: bytes,
) -> bytes:
    from .protocol import _ENGINE_IDS, _KIND_IDS, _pack_str

    return (
        _pack_str(name)
        + bytes([_KIND_IDS[kind]])
        + _F64.pack(epsilon)
        + _U64.pack(0 if n is None else int(n))
        + _pack_str(policy)
        + bytes([_ENGINE_IDS[engine]])
        + _U32.pack(len(payload))
        + payload
    )


def _ingest_body_parts(
    prefix: bytes, name: str, values: np.ndarray
) -> "List[bytes | memoryview]":
    """INGEST record body as buffer parts -- no batch copy.

    The values array is contributed as a raw memoryview; CRC and file
    write both consume it in place, so journaling a batch costs zero
    copies beyond the kernel write itself (the zero-copy receive path
    hands the server read-only views, and they flow straight through).
    """
    from .protocol import _pack_str

    arr = np.ascontiguousarray(values, dtype="<f8")
    return [
        prefix + _pack_str(name) + _U32.pack(arr.size),
        arr.data.cast("B"),
    ]


def _decode_body(body: bytes) -> JournalRecord:
    from .protocol import (
        WMODE_DECAY,
        WMODE_NONE,
        WMODE_WINDOW,
        _ENGINE_NAMES,
        _KIND_NAMES,
        _RULE_OP_NAMES,
        _Reader,
    )

    r = _Reader(body)
    seq = r.u64("seq")
    rtype = r.u8("record type")
    token = r.u64("idempotency token")
    if rtype == CREATE_RECORD:
        name = r.string("metric name")
        kind_id = r.u8("metric kind")
        if kind_id not in _KIND_NAMES:
            raise StorageError(f"unknown metric kind id {kind_id}")
        epsilon = r.f64("epsilon")
        n = r.u64("n")
        policy = r.string("policy")
        engine = "paper"
        if r.pos != len(r.buf):  # pre-engine records have no trailing byte
            engine_id = r.u8("sketch engine")
            if engine_id not in _ENGINE_NAMES:
                raise StorageError(f"unknown sketch engine id {engine_id}")
            engine = _ENGINE_NAMES[engine_id]
        window_s = slide_s = decay_s = 0.0
        if r.pos != len(r.buf):  # window/decay config block
            wmode = r.u8("window mode")
            p1 = r.f64("window p1")
            p2 = r.f64("window p2")
            if wmode == WMODE_WINDOW:
                window_s, slide_s = p1, p2
            elif wmode == WMODE_DECAY:
                decay_s = p1
            elif wmode != WMODE_NONE:
                raise StorageError(f"unknown window mode {wmode}")
        rec = JournalRecord(
            seq=seq,
            type=rtype,
            name=name,
            kind=_KIND_NAMES[kind_id],
            epsilon=epsilon,
            n=None if n == 0 else n,
            policy=policy,
            token=token,
            engine=engine,
            window_s=window_s,
            slide_s=slide_s,
            decay_s=decay_s,
        )
    elif rtype == INGEST_RECORD:
        name = r.string("metric name")
        count = r.u32("value count")
        values = r.f64_array(count, "values")
        rec = JournalRecord(
            seq=seq, type=rtype, name=name, values=values, token=token
        )
    elif rtype == INGEST_AT_RECORD:
        name = r.string("metric name")
        t = r.f64("event time")
        count = r.u32("value count")
        values = r.f64_array(count, "values")
        rec = JournalRecord(
            seq=seq, type=rtype, name=name, values=values, token=token, t=t
        )
    elif rtype == WATCH_RECORD:
        name = r.string("rule id")
        metric = r.string("metric name")
        phi = r.f64("phi")
        op_id = r.u8("rule operator")
        if op_id not in _RULE_OP_NAMES:
            raise StorageError(f"unknown rule operator id {op_id}")
        threshold = r.f64("threshold")
        rec = JournalRecord(
            seq=seq,
            type=rtype,
            name=name,
            token=token,
            metric=metric,
            phi=phi,
            rule_op=_RULE_OP_NAMES[op_id],
            threshold=threshold,
        )
    elif rtype == UNWATCH_RECORD:
        name = r.string("rule id")
        rec = JournalRecord(seq=seq, type=rtype, name=name, token=token)
    elif rtype == RESTORE_RECORD:
        name = r.string("metric name")
        kind_id = r.u8("metric kind")
        if kind_id not in _KIND_NAMES:
            raise StorageError(f"unknown metric kind id {kind_id}")
        epsilon = r.f64("epsilon")
        n = r.u64("n")
        policy = r.string("policy")
        engine_id = r.u8("sketch engine")
        if engine_id not in _ENGINE_NAMES:
            raise StorageError(f"unknown sketch engine id {engine_id}")
        size = r.u32("payload size")
        payload = bytes(r.take(size, "restore payload"))
        rec = JournalRecord(
            seq=seq,
            type=rtype,
            name=name,
            kind=_KIND_NAMES[kind_id],
            epsilon=epsilon,
            n=None if n == 0 else n,
            policy=policy,
            payload=payload,
            token=token,
            engine=_ENGINE_NAMES[engine_id],
        )
    else:
        raise StorageError(f"unknown journal record type {rtype}")
    r.done("journal record")
    return rec


class IngestJournal:
    """Writer handle for one journal file.

    Parameters
    ----------
    path:
        Journal file location.  An existing file is scanned, its torn
        tail (if any) truncated away, and appends continue after the
        highest surviving sequence number.
    start_seq:
        When creating a fresh file: the snapshot sequence number this
        journal follows (records in this file carry ``seq > start_seq``).
    fsync:
        ``False`` (default) flushes after every append -- durable against
        process kills.  ``True`` additionally ``os.fsync``\\ s -- durable
        against power loss, at a large per-batch cost.
    """

    def __init__(
        self, path: str, *, start_seq: int = 0, fsync: bool = False
    ) -> None:
        self.path = path
        self.fsync = fsync
        if os.path.exists(path):
            scan = read_journal(path)
            if scan.damaged:
                # drop the torn tail so appends extend a valid prefix
                with open(path, "r+b") as fh:
                    fh.truncate(scan.valid_bytes)
            self.start_seq = scan.start_seq
            self._seq = max(
                [scan.start_seq] + [rec.seq for rec in scan.records]
            )
            self._fh = open(path, "ab")
        else:
            self.start_seq = start_seq
            self._seq = start_seq
            self._fh = open(path, "wb")
            self._fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, start_seq))
            self._sync()

    # -- writing -----------------------------------------------------------

    @property
    def seq(self) -> int:
        """Highest sequence number written (== applied on a live server)."""
        return self._seq

    def _append(self, body: bytes) -> None:
        self._append_parts([body])

    def _append_parts(self, parts: "List[bytes | memoryview]") -> None:
        """Append one record given as buffer parts.

        The CRC is accumulated incrementally across the parts and each
        part is written directly, so large ingest payloads are never
        joined into an intermediate bytes object.
        """
        crc = 0
        body_len = 0
        for part in parts:
            crc = zlib.crc32(part, crc)
            body_len += len(part)
        self._fh.write(_RECORD_HEADER.pack(crc & 0xFFFFFFFF, body_len))
        for part in parts:
            self._fh.write(part)
        self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append_create(
        self,
        name: str,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        token: int = 0,
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> int:
        """Record a metric creation; returns its sequence number."""
        self._seq += 1
        body = _SEQ_TYPE.pack(
            self._seq, CREATE_RECORD, token
        ) + _encode_create(
            name, kind, epsilon, n, policy, engine,
            window_s, slide_s, decay_s,
        )
        self._append(body)
        return self._seq

    def append_ingest(
        self, name: str, values: np.ndarray, token: int = 0
    ) -> int:
        """Record an ingest batch; returns its sequence number."""
        self._seq += 1
        prefix = _SEQ_TYPE.pack(self._seq, INGEST_RECORD, token)
        self._append_parts(_ingest_body_parts(prefix, name, values))
        return self._seq

    def append_ingest_at(
        self, name: str, values: np.ndarray, t: float, token: int = 0
    ) -> int:
        """Record a timestamped (windowed) ingest batch.

        The event time rides in the record, so replay feeds the ring the
        exact (values, t) pair the live server did.
        """
        from .protocol import _pack_str

        self._seq += 1
        prefix = _SEQ_TYPE.pack(self._seq, INGEST_AT_RECORD, token)
        arr = np.ascontiguousarray(values, dtype="<f8")
        self._append_parts(
            [
                prefix
                + _pack_str(name)
                + _F64.pack(float(t))
                + _U32.pack(arr.size),
                arr.data.cast("B"),
            ]
        )
        return self._seq

    def append_watch(
        self,
        rule_id: str,
        metric: str,
        phi: float,
        op: str,
        threshold: float,
        token: int = 0,
    ) -> int:
        """Record a WATCH rule registration."""
        from .protocol import _RULE_OPS, _pack_str

        self._seq += 1
        body = (
            _SEQ_TYPE.pack(self._seq, WATCH_RECORD, token)
            + _pack_str(rule_id)
            + _pack_str(metric)
            + _F64.pack(phi)
            + bytes([_RULE_OPS[op]])
            + _F64.pack(threshold)
        )
        self._append(body)
        return self._seq

    def append_unwatch(self, rule_id: str, token: int = 0) -> int:
        """Record a WATCH rule removal."""
        from .protocol import _pack_str

        self._seq += 1
        body = _SEQ_TYPE.pack(
            self._seq, UNWATCH_RECORD, token
        ) + _pack_str(rule_id)
        self._append(body)
        return self._seq

    def append_restore(
        self,
        name: str,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        engine: str,
        payload: bytes,
        token: int = 0,
    ) -> int:
        """Record a full-state install (re-sync); returns its sequence."""
        self._seq += 1
        body = _SEQ_TYPE.pack(
            self._seq, RESTORE_RECORD, token
        ) + _encode_restore(name, kind, epsilon, n, policy, engine, payload)
        self._append(body)
        return self._seq

    # -- lifecycle ---------------------------------------------------------

    def rotate(self, start_seq: int) -> None:
        """Atomically replace the journal with an empty one after a snapshot.

        The new file records ``start_seq`` (the snapshot's applied
        sequence); a crash between the snapshot rename and this rotation
        is safe because replay skips records with ``seq <= start_seq``.
        """
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, start_seq))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self.start_seq = start_seq
        self._seq = max(self._seq, start_seq)
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        if not self._fh.closed:
            self._sync()
            self._fh.close()

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: str) -> JournalScan:
    """Scan *path*, returning every fully-valid record in order.

    Never raises on torn/corrupt tails -- that is the expected post-crash
    state; the scan stops at the first invalid byte and reports how much
    of the file was sound.  A missing or garbled *file header* does
    raise: that is not a crash artefact but a wrong file.
    """
    with open(path, "rb") as fh:
        header = fh.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            raise StorageError(f"{path}: too short to be a journal")
        magic, version, start_seq = _FILE_HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError(f"{path}: bad magic {magic!r}: not a journal")
        if version != _VERSION:
            raise StorageError(f"{path}: unsupported journal version {version}")
        records: List[JournalRecord] = []
        valid = _FILE_HEADER.size
        damaged = False
        expected_seq = start_seq
        while True:
            raw = fh.read(_RECORD_HEADER.size)
            if not raw:
                break  # clean end
            if len(raw) < _RECORD_HEADER.size:
                damaged = True
                break
            crc, body_len = _RECORD_HEADER.unpack(raw)
            if body_len > _MAX_RECORD_BYTES:
                damaged = True
                break
            body = fh.read(body_len)
            if len(body) < body_len or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                damaged = True
                break
            try:
                rec = _decode_body(body)
            except StorageError:
                damaged = True
                break
            if rec.seq != expected_seq + 1:
                # sequence gap: treat everything from here as unusable
                damaged = True
                break
            expected_seq = rec.seq
            records.append(rec)
            valid = fh.tell()
    return JournalScan(
        start_seq=start_seq,
        records=records,
        valid_bytes=valid,
        damaged=damaged,
    )
