"""Deterministic fault injection: a chaos TCP proxy for the service.

The resilience layer is only as good as the failures it was tested
against, so this module makes failures *reproducible*: a
:class:`ChaosProxy` sits between any client and server and injects
faults -- connection resets, byte truncation, delays, stalls and
forced partial reads/writes -- at exact **byte offsets** of a
connection's two directions, driven by a :class:`FaultSchedule` that is
a pure function of its seed (or an explicit event list).  Nothing in
the proxy consults a wall clock or an unseeded RNG to *decide*
anything, so a given schedule tears the same frames at the same bytes
on every run -- which is what lets the chaos property suite assert
bit-identical end states.

Use it in tests::

    schedule = FaultSchedule([
        [FaultEvent("reset", "c2s", after_bytes=100)],   # connection 0
        [FaultEvent("stall", "s2c", after_bytes=5, delay_s=0.05)],
        # connections beyond the list are transparent
    ])
    with ChaosProxy("127.0.0.1", server.port, schedule=schedule) as proxy:
        client = QuantileClient("127.0.0.1", proxy.port)

or against a live dev server with ``repro serve --chaos [--chaos-seed N]``,
which fronts the real listener with a seeded proxy so every client
exercises the retry/dedup path.

Fault kinds
-----------

``reset``
    Abort the connection with an RST (``SO_LINGER 0``) once
    ``after_bytes`` have been forwarded in the event's direction.
``truncate``
    Forward exactly ``after_bytes`` in the direction, silently drop the
    rest, and close the connection cleanly (FIN mid-frame).
``delay``
    One-shot: sleep ``delay_s`` when the offset is crossed, then
    continue normally (added latency).
``stall``
    Same mechanics as ``delay`` but conventionally much longer -- use
    it to exercise client deadlines.
``partial``
    From the offset on, forward one byte at a time (``chop`` bytes,
    configurable): every subsequent read on the peer is a partial read.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = ["FaultEvent", "FaultSchedule", "ChaosProxy", "FAULT_KINDS"]

FAULT_KINDS = ("reset", "truncate", "delay", "stall", "partial")
_DIRECTIONS = ("c2s", "s2c")

#: forwarding chunk size (big enough that chunking itself is invisible)
_CHUNK = 65536

#: pump poll interval -- bounds how long an abort can lag behind its
#: fault event while the peer pump is blocked in recv/send
_POLL_S = 0.05


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, anchored at a byte offset of one direction.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    direction:
        ``"c2s"`` (client -> server bytes) or ``"s2c"`` (server ->
        client bytes).  Offsets count bytes *forwarded* in that
        direction only.
    after_bytes:
        The event fires once this many bytes have been forwarded in
        ``direction`` (0 = before the first byte).
    delay_s:
        Sleep duration for ``delay`` / ``stall``.
    chop:
        Write size for ``partial`` (default 1 byte).
    """

    kind: str
    direction: str
    after_bytes: int
    delay_s: float = 0.0
    chop: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"unknown direction {self.direction!r}; expected c2s or s2c"
            )
        if self.after_bytes < 0:
            raise ConfigurationError("after_bytes must be >= 0")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        if self.chop < 1:
            raise ConfigurationError("chop must be >= 1")


class FaultSchedule:
    """Per-connection fault plans, deterministic by construction.

    Two modes:

    * **explicit** -- ``FaultSchedule(plans)`` where ``plans[i]`` is the
      event list for the *i*-th accepted connection; connections beyond
      the list are transparent.  This is what hypothesis drives.
    * **seeded** -- :meth:`FaultSchedule.from_seed` derives each
      connection's plan from ``(seed, connection_index)`` alone, so an
      unbounded stream of connections still gets reproducible faults.
      ``repro serve --chaos`` uses this mode.
    """

    def __init__(
        self, plans: Sequence[Sequence[FaultEvent]] = ()
    ) -> None:
        self._plans: List[Tuple[FaultEvent, ...]] = [
            tuple(plan) for plan in plans
        ]
        self._seed: Optional[int] = None
        self._fault_probability = 0.0
        self._max_delay_s = 0.0

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        fault_probability: float = 0.25,
        max_delay_s: float = 0.05,
    ) -> "FaultSchedule":
        """A schedule where each connection independently (but
        deterministically, from ``(seed, index)``) draws up to two
        faults with probability *fault_probability* each."""
        if not 0.0 <= fault_probability <= 1.0:
            raise ConfigurationError(
                "fault_probability must be within [0, 1]"
            )
        schedule = cls()
        schedule._seed = seed
        schedule._fault_probability = fault_probability
        schedule._max_delay_s = max_delay_s
        return schedule

    def plan_for(self, conn_index: int) -> Tuple[FaultEvent, ...]:
        """The fault plan for the *conn_index*-th accepted connection."""
        if self._seed is None:
            if conn_index < len(self._plans):
                return self._plans[conn_index]
            return ()
        # string seeding is stable across processes and python versions
        rng = random.Random(f"chaos:{self._seed}:{conn_index}")
        events = []
        for _ in range(2):
            if rng.random() >= self._fault_probability:
                continue
            kind = rng.choice(FAULT_KINDS)
            events.append(
                FaultEvent(
                    kind=kind,
                    direction=rng.choice(_DIRECTIONS),
                    after_bytes=rng.randrange(0, 4096),
                    delay_s=(
                        rng.uniform(0.001, self._max_delay_s)
                        if kind in ("delay", "stall")
                        else 0.0
                    ),
                )
            )
        return tuple(events)


class _ChaosConnection:
    """One proxied connection: two pump threads + shared abort state."""

    def __init__(
        self,
        index: int,
        client_sock: socket.socket,
        server_sock: socket.socket,
        plan: Sequence[FaultEvent],
        proxy: "ChaosProxy",
    ) -> None:
        self.index = index
        self.client_sock = client_sock
        self.server_sock = server_sock
        self.plan = plan
        self.proxy = proxy
        self.aborted = threading.Event()
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(
                target=self._pump,
                args=(client_sock, server_sock, "c2s"),
                name=f"chaos-{index}-c2s",
                daemon=True,
            ),
            threading.Thread(
                target=self._pump,
                args=(server_sock, client_sock, "s2c"),
                name=f"chaos-{index}-s2c",
                daemon=True,
            ),
        ]

    def start(self) -> None:
        for t in self.threads:
            t.start()

    def abort(self, *, rst: bool) -> None:
        """Tear the connection down; ``rst=True`` sends a reset.

        The peer pump thread may be blocked inside ``recv`` on one of
        these sockets, which keeps the kernel file alive past ``close``
        and would defer the RST indefinitely -- that is why the pumps
        poll with :data:`_POLL_S` timeouts: the blocked thread wakes
        within one poll interval, drops its reference, and the close
        (with ``SO_LINGER`` zero for ``rst=True``) takes effect.
        """
        with self._lock:
            if self.aborted.is_set():
                return
            self.aborted.set()
            for sock in (self.client_sock, self.server_sock):
                try:
                    if rst:
                        sock.setsockopt(
                            socket.SOL_SOCKET,
                            socket.SO_LINGER,
                            struct.pack("ii", 1, 0),  # => RST on close
                        )
                    else:
                        # clean FIN toward both peers before closing
                        try:
                            sock.shutdown(socket.SHUT_WR)
                        except OSError:
                            pass
                    sock.close()
                except OSError:
                    pass

    # -- the pump ----------------------------------------------------------

    def _pump(self, src: socket.socket, dst: socket.socket, direction: str
              ) -> None:
        events = sorted(
            (e for e in self.plan if e.direction == direction),
            key=lambda e: e.after_bytes,
        )
        next_event = 0
        forwarded = 0
        chop: Optional[int] = None
        try:
            while not self.aborted.is_set():
                try:
                    data = src.recv(_CHUNK)
                except socket.timeout:
                    continue  # poll tick: re-check aborted
                if not data:
                    # clean EOF: half-close toward the destination
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                while data:
                    if next_event < len(events):
                        event = events[next_event]
                        gap = event.after_bytes - forwarded
                        if gap <= len(data):
                            # forward up to the event offset, fire it
                            head, data = data[:gap], data[gap:]
                            if head:
                                self._forward(dst, head, chop)
                                forwarded += len(head)
                            next_event += 1
                            self.proxy._record_fault(self.index, event)
                            if event.kind == "reset":
                                self.abort(rst=True)
                                return
                            if event.kind == "truncate":
                                self.abort(rst=False)
                                return
                            if event.kind in ("delay", "stall"):
                                self.aborted.wait(event.delay_s)
                            elif event.kind == "partial":
                                chop = event.chop
                            continue
                    self._forward(dst, data, chop)
                    forwarded += len(data)
                    data = b""
        except OSError:
            # peer vanished (or we were aborted): mirror the failure
            self.abort(rst=False)

    def _forward(
        self, dst: socket.socket, data: bytes, chop: Optional[int]
    ) -> None:
        step = len(data) if chop is None else chop
        for start in range(0, len(data), step):
            view = memoryview(data)[start : start + step]
            while view and not self.aborted.is_set():
                try:
                    sent = dst.send(view)
                except socket.timeout:
                    continue  # poll tick: re-check aborted
                view = view[sent:]


class ChaosProxy:
    """An in-process TCP proxy injecting faults from a schedule.

    Accepts on ``(host, port)`` (``port=0`` binds an ephemeral port --
    read :attr:`port` back) and forwards every connection to
    ``upstream_host:upstream_port``, applying the
    :class:`FaultSchedule` plan for that connection's index.  Without a
    schedule the proxy is fully transparent, which is itself useful:
    the chaos suite's fault-free control runs through the same code
    path.

    Thread-based and blocking-socket so it composes with both the
    blocking client and the asyncio server from any test or shell.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        schedule: Optional[FaultSchedule] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.connections_accepted = 0
        #: every fault actually fired: ``(connection index, event)``
        self.faults_injected: List[Tuple[int, FaultEvent]] = []
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[_ChaosConnection] = []
        self._lock = threading.Lock()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            conn.abort(rst=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------

    def _record_fault(self, conn_index: int, event: FaultEvent) -> None:
        with self._lock:
            self.faults_injected.append((conn_index, event))

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                client_sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            index = self.connections_accepted
            self.connections_accepted += 1
            try:
                server_sock = socket.create_connection(
                    (self.upstream_host, self.upstream_port),
                    timeout=self.connect_timeout,
                )
            except OSError:
                client_sock.close()
                continue
            for sock in (client_sock, server_sock):
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                # short poll timeout so pump threads notice aborts (see
                # _ChaosConnection.abort); transparent otherwise
                sock.settimeout(_POLL_S)
            conn = _ChaosConnection(
                index,
                client_sock,
                server_sock,
                self.schedule.plan_for(index),
                self,
            )
            with self._lock:
                self._connections.append(conn)
            conn.start()
