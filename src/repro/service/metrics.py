"""Service observability.

Counters plus -- naturally -- a quantile sketch: query latencies are
tracked by the library's own
:class:`~repro.core.adaptive.AdaptiveQuantileSketch`, so the server's
``STATS`` response reports p50/p95/p99 latency with a certified rank
bound, the same guarantee it serves to clients.  Ingest rates are both
cumulative and windowed (a short deque of recent batches), batch sizes
feed a second sketch so the batching efficiency of the shard flusher is
visible, and per-shard collapse counts / memory come straight from the
registry (:mod:`repro.analysis.memory` accounting).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..analysis.memory import report_memory
from ..core.adaptive import AdaptiveQuantileSketch
from ..core.errors import EmptySummaryError
from ..obs import hooks as obs_hooks
from ..obs.metrics import TimingSketch
from .registry import SketchRegistry

__all__ = ["ServiceMetrics"]

#: window for the "recent" ingest rate, seconds
_RATE_WINDOW_S = 10.0

#: buffered observations per stream before a vectorised sketch flush
_FLUSH_AT = 1024


class ServiceMetrics:
    """Mutable counters + latency/batch-size sketches for one server."""

    def __init__(self, n_shards: int) -> None:
        self.started_at = time.time()
        self._t0 = time.monotonic()
        self.n_shards = n_shards
        self.ingest_batches = 0
        self.ingest_elements = 0
        self.ingest_batches_by_shard = [0] * n_shards
        self.ingest_elements_by_shard = [0] * n_shards
        self.queries = 0
        self.snapshots = 0
        self.recovered_records = 0
        self.connections_total = 0
        self.connections_open = 0
        self.backpressure_flushes = 0
        self.coalesced_reads = 0
        self.coalesced_frames = 0
        self._recent: Deque[Tuple[float, int]] = deque()
        self.query_latency = AdaptiveQuantileSketch(epsilon=0.01)
        self.batch_sizes = AdaptiveQuantileSketch(epsilon=0.01)
        #: frames dispatched per socket read -- how deep clients pipeline
        self.frames_per_read = AdaptiveQuantileSketch(epsilon=0.01)
        #: per-opcode latency histograms, each a quantile sketch itself
        self.op_latency: Dict[str, TimingSketch] = {}
        # observation buffers: the hot path appends floats to plain
        # lists and the sketches are fed in vectorised batches (at
        # _FLUSH_AT, or when a reader asks) -- one sketch insert per
        # request was a measurable slice of server CPU, and batched
        # ingest is bit-identical to one-at-a-time
        self._batch_size_buf: list = []
        self._frames_buf: list = []
        self._op_buf: Dict[str, list] = {}

    # -- recording ---------------------------------------------------------

    def record_ingest(self, shard: int, n_values: int) -> None:
        self.ingest_batches += 1
        self.ingest_elements += n_values
        self.ingest_batches_by_shard[shard] += 1
        self.ingest_elements_by_shard[shard] += n_values
        buf = self._batch_size_buf
        buf.append(float(n_values))
        if len(buf) >= _FLUSH_AT:
            self.flush_observations()
        now = time.monotonic()
        self._recent.append((now, n_values))
        horizon = now - _RATE_WINDOW_S
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    def record_coalesce(self, n_frames: int) -> None:
        """One socket read dispatched *n_frames* requests as a batch."""
        self.coalesced_reads += 1
        self.coalesced_frames += n_frames
        self._frames_buf.append(float(n_frames))

    def record_query(self, seconds: float) -> None:
        self.queries += 1
        self.query_latency.update(seconds * 1000.0)

    def record_op(self, op_name: str, seconds: float) -> None:
        """Feed one request's wall time into that opcode's sketch."""
        buf = self._op_buf.get(op_name)
        if buf is None:
            buf = self._op_buf[op_name] = []
        buf.append(seconds * 1000.0)
        if len(buf) >= _FLUSH_AT:
            self.flush_observations()

    def flush_observations(self) -> None:
        """Drain the observation buffers into their sketches."""
        if self._batch_size_buf:
            self.batch_sizes.extend(self._batch_size_buf)
            self._batch_size_buf = []
        if self._frames_buf:
            self.frames_per_read.extend(self._frames_buf)
            self._frames_buf = []
        for op_name, buf in self._op_buf.items():
            if buf:
                sketch = self.op_latency.get(op_name)
                if sketch is None:
                    sketch = self.op_latency[op_name] = TimingSketch()
                sketch.extend_ms(buf)
        self._op_buf = {}

    # -- reporting ---------------------------------------------------------

    def _sketch_percentiles(
        self, sketch: AdaptiveQuantileSketch
    ) -> Optional[Dict[str, float]]:
        if sketch.n == 0:
            return None
        try:
            p50, p95, p99 = sketch.quantiles([0.5, 0.95, 0.99])
        except EmptySummaryError:  # pragma: no cover - guarded by n above
            return None
        return {
            "p50": round(float(p50), 4),
            "p95": round(float(p95), 4),
            "p99": round(float(p99), 4),
            "n": sketch.n,
            "certified_rank_bound_fraction": round(
                sketch.error_bound_fraction(), 6
            ),
        }

    def uptime_s(self) -> float:
        """Seconds since this server's metrics were initialised."""
        return time.monotonic() - self._t0

    def recent_rate(self) -> float:
        """Elements/s ingested over the trailing window."""
        if not self._recent:
            return 0.0
        now = time.monotonic()
        horizon = now - _RATE_WINDOW_S
        total = sum(n for t, n in self._recent if t >= horizon)
        span = min(_RATE_WINDOW_S, max(now - self._recent[0][0], 1e-9))
        return total / span

    def _obs_section(self, registry: SketchRegistry) -> Dict[str, object]:
        """Live observability detail: per-metric certified bounds,
        collapse counts by level, self-metered per-op latency, and the
        global :mod:`repro.obs` counter totals."""
        metrics_detail = []
        for entry in registry.entries():
            sketch = entry.sketch
            n = int(sketch.n)
            bound = float(sketch.error_bound()) if n else 0.0
            detail: Dict[str, object] = {
                "name": entry.name,
                "kind": entry.kind,
                "shard": entry.shard,
                "n": n,
                "certified_bound": bound,
                "certified_bound_fraction": (bound / n) if n else 0.0,
            }
            stats = obs_hooks.collected_stats(sketch)
            if stats is not None:
                detail["collapses_by_level"] = {
                    str(k): v
                    for k, v in sorted(stats.collapses_by_level.items())
                }
                detail["new_by_level"] = {
                    str(k): v for k, v in sorted(stats.new_by_level.items())
                }
            metrics_detail.append(detail)
        op_latency = {
            op: sketch.percentiles()
            for op, sketch in sorted(self.op_latency.items())
            if sketch.n
        }
        reg = obs_hooks.registry()
        counters = {
            name: int(reg.total(name))
            for name in reg.names()
            if reg.kind_of(name) == "counter"
        }
        return {
            "enabled": obs_hooks.is_enabled(),
            "metrics": metrics_detail,
            "op_latency_ms": op_latency,
            "counters": counters,
        }

    def to_dict(
        self, registry: SketchRegistry, rules: Optional[object] = None
    ) -> Dict[str, object]:
        self.flush_observations()
        uptime = time.monotonic() - self._t0
        shard_stats = registry.shard_stats()
        for stats in shard_stats:
            shard = int(stats["shard"])
            stats["ingest_batches"] = self.ingest_batches_by_shard[shard]
            stats["ingest_elements"] = self.ingest_elements_by_shard[shard]
            stats["ingest_rate_per_s"] = round(
                self.ingest_elements_by_shard[shard] / uptime, 1
            ) if uptime > 0 else 0.0
        memory_reports = [
            report_memory(entry.sketch) for entry in registry.entries()
        ]
        watch: Dict[str, object] = {
            "rules": 0,
            "evaluations": 0,
            "alerts_definite_total": 0,
            "alerts_possible_total": 0,
        }
        if rules is not None:
            totals = rules.alert_totals()
            watch = {
                "rules": len(rules),
                "evaluations": rules.evaluations,
                "alerts_definite_total": totals["definite"],
                "alerts_possible_total": totals["possible"],
            }
        return {
            "uptime_s": round(uptime, 3),
            "started_at_unix": round(self.started_at, 3),
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "ingest": {
                "batches": self.ingest_batches,
                "elements": self.ingest_elements,
                "rate_per_s_recent": round(self.recent_rate(), 1),
                "rate_per_s_lifetime": round(
                    self.ingest_elements / uptime, 1
                ) if uptime > 0 else 0.0,
                "batch_size": self._sketch_percentiles(self.batch_sizes),
            },
            "queries": {
                "count": self.queries,
                "latency_ms": self._sketch_percentiles(self.query_latency),
            },
            "durability": {
                "snapshots_written": self.snapshots,
                "journal_records_recovered": self.recovered_records,
            },
            "coalescing": {
                "reads": self.coalesced_reads,
                "frames": self.coalesced_frames,
                "frames_per_read": self._sketch_percentiles(
                    self.frames_per_read
                ),
            },
            "resilience": {
                "dedup_window_tokens": len(registry.dedup),
                "dedup_hits": registry.dedup.hits,
                "backpressure_flushes": self.backpressure_flushes,
            },
            "registry": {
                "metrics": len(registry),
                "total_elements": registry.total_elements,
                "memory_elements": sum(r.elements for r in memory_reports),
                "memory_bytes_incl_bookkeeping": sum(
                    r.total_bytes for r in memory_reports
                ),
            },
            "watch": watch,
            "shards": shard_stats,
            "obs": self._obs_section(registry),
        }
