"""The sharded sketch registry behind the service.

Metrics are named ``namespace/metric`` strings, each owning either a
fixed-N :class:`~repro.core.framework.QuantileFramework` (sized by
``optimal_parameters`` exactly like :class:`~repro.core.sketch.QuantileSketch`'s
deterministic path) or an
:class:`~repro.core.adaptive.AdaptiveQuantileSketch` for streams of
unknown length.  Names hash onto a fixed number of *shards* (stable
CRC32, so a metric lands on the same shard across restarts and shard
counts can change without moving data -- the hash only picks a batching
domain, never where answers come from).

Each shard owns a :class:`~repro.core.bank.SketchBank` into which every
fixed metric's framework is adopted.  Ingest batches are *enqueued* per
shard and *applied* in one shot: all pending fixed-metric batches feed
the bank's vectorised :meth:`~repro.core.bank.SketchBank.extend_pairs`
(one stable partition for the whole super-batch), adaptive metrics take
their batches directly, in arrival order.  Because the bank is
bit-identical to per-sketch feeding, the apply order is equivalent to
replaying the journal one record at a time -- the property crash
recovery relies on.

The registry is synchronous and transport-free; the asyncio server is a
thin shell over it, and tests drive it directly.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.adaptive import AdaptiveQuantileSketch
from ..core.bank import SketchBank
from ..core.errors import ConfigurationError, EmptySummaryError
from ..core.framework import QuantileFramework
from ..core.frugal import DEFAULT_BANK_PHIS, FrugalBank, FrugalSketch
from ..core.kll import KLLSketch
from ..core.parameters import optimal_parameters
from ..core import serialize

__all__ = [
    "MetricEntry",
    "SketchRegistry",
    "DedupWindow",
    "DEFAULT_DESIGN_N",
    "DEFAULT_DEDUP_CAPACITY",
]

#: bound on remembered idempotency tokens (FIFO eviction).  At typical
#: retry horizons (seconds) this is orders of magnitude more than a
#: client fleet can have in flight; the bound only exists so a
#: long-running server cannot grow without limit.
DEFAULT_DEDUP_CAPACITY = 65536

#: design capacity for fixed metrics created without ``n`` (mirrors
#: :data:`repro.core.sketch.DEFAULT_DESIGN_N`)
DEFAULT_DESIGN_N = 2**30

#: initial stage capacity for adaptive metrics created without ``n``
_DEFAULT_ADAPTIVE_CAPACITY = 4096

_KINDS = ("fixed", "adaptive")
_ENGINES = ("paper", "kll", "frugal")

Sketch = Union[
    QuantileFramework, AdaptiveQuantileSketch, KLLSketch, FrugalSketch
]

_FINITE_MSG = (
    "numeric streams must be finite: the framework reserves "
    "+/-inf as padding sentinels and NaN has no rank"
)


class MetricEntry:
    """One named metric: configuration + live sketch + shard placement."""

    __slots__ = (
        "name", "kind", "epsilon", "n", "policy", "engine", "shard",
        "bank_id", "sketch", "n_batches", "window_s", "slide_s", "decay_s",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        shard: int,
        sketch: Sketch,
        bank_id: Optional[int],
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> None:
        self.name = name
        self.kind = kind
        self.epsilon = epsilon
        self.n = n
        self.policy = policy
        self.engine = engine
        self.shard = shard
        self.sketch = sketch
        self.bank_id = bank_id
        self.n_batches = 0
        self.window_s = window_s
        self.slide_s = slide_s
        self.decay_s = decay_s

    @property
    def windowed(self) -> bool:
        """Whether ingest must carry event time (window or decay config)."""
        return bool(self.window_s or self.decay_s)

    @property
    def count(self) -> int:
        """Elements ingested (applied) so far."""
        return self.sketch.n

    @property
    def memory_elements(self) -> int:
        return self.sketch.memory_elements

    def config_tuple(
        self,
    ) -> Tuple[str, float, Optional[int], str, str, float, float, float]:
        return (
            self.kind, self.epsilon, self.n, self.policy, self.engine,
            self.window_s, self.slide_s, self.decay_s,
        )

    def collapse_count(self) -> int:
        if self.windowed:
            return 0
        if self.engine == "kll":
            assert isinstance(self.sketch, KLLSketch)
            return self.sketch._n_compactions
        if self.engine != "paper":
            return 0
        if isinstance(self.sketch, QuantileFramework):
            return self.sketch.n_collapses
        return sum(s.n_collapses for s in self.sketch._closed) + (
            self.sketch._active.n_collapses
        )


class _Shard:
    """One batching domain: the engine banks plus the queue draining into
    them.

    Paper-engine fixed metrics are adopted into ``bank``; frugal metrics
    into ``fbank`` (flat-array Frugal-2U state -- tens of bytes per
    metric, one vectorised kernel pass per drain).  Both banks are
    bit-identical to per-sketch feeding, which is what keeps journal
    replay exact.
    """

    __slots__ = ("bank", "fbank", "pending", "n_applied", "n_batches_applied")

    def __init__(self) -> None:
        # the shared-config plan is never used (every sketch is adopted),
        # so the bank's own epsilon/n are placeholders
        self.bank = SketchBank(0.01)
        self.fbank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
        # (entry, values, event_time); event_time is None for the
        # all-time metrics, a float for windowed/decayed ones
        self.pending: List[
            Tuple[MetricEntry, np.ndarray, Optional[float]]
        ] = []
        self.n_applied = 0
        self.n_batches_applied = 0


class DedupWindow:
    """Bounded token -> response map: exactly-once for retried mutations.

    Every mutating request (CREATE/INGEST/SNAPSHOT) may carry a
    client-generated 64-bit idempotency token.  The first time a token is
    seen, the mutation is applied and its response recorded here; a retry
    with the same token -- the client lost the ack to a reset, stall or
    crash -- replays the *recorded* response without touching the
    sketches, so a batch is never double-counted.

    The window is journal-backed: tokens ride in the journal records
    (format v2), and recovery re-records them, so dedup survives a server
    crash between apply and ack.  Tokens older than the last snapshot
    rotation fall out of the journal; together with the FIFO capacity
    bound this makes the guarantee a *window* -- ample for retry
    horizons of seconds against snapshot intervals of tens of seconds.
    """

    __slots__ = ("capacity", "_entries", "hits")

    def __init__(self, capacity: int = DEFAULT_DEDUP_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"dedup window needs capacity >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[int, Dict[str, object]]" = OrderedDict()
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, token: int) -> bool:
        return token in self._entries

    def get(self, token: int) -> Optional[Dict[str, object]]:
        """The recorded response for *token*, or None if unseen/evicted."""
        hit = self._entries.get(token)
        if hit is not None:
            self.hits += 1
        return hit

    def record(self, token: int, response: Dict[str, object]) -> None:
        """Remember *response* for *token* (token 0 means "no token")."""
        if token == 0:
            return
        self._entries[token] = response
        self._entries.move_to_end(token)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


def shard_of(name: str, n_shards: int) -> int:
    """Stable shard assignment (CRC32 of the UTF-8 name)."""
    return zlib.crc32(name.encode("utf-8")) % n_shards


class SketchRegistry:
    """Named sketches, sharded for batched ingest."""

    def __init__(
        self,
        n_shards: int = 4,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"need >= 1 shard, got {n_shards}")
        self.n_shards = n_shards
        self._shards = [_Shard() for _ in range(n_shards)]
        self._metrics: Dict[str, MetricEntry] = {}
        #: timestamp source for windowed metrics (injectable for tests
        #: and the server's synthetic-clock mode)
        self.clock: Callable[[], float] = clock or time.time
        #: idempotency-token window (journal-backed via the server)
        self.dedup = DedupWindow()

    # -- metric management -------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return list(self._metrics)

    def entries(self) -> List[MetricEntry]:
        return list(self._metrics.values())

    def get(self, name: str) -> MetricEntry:
        entry = self._metrics.get(name)
        if entry is None:
            raise ConfigurationError(f"unknown metric {name!r}")
        return entry

    def _build_sketch(
        self,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> Sketch:
        if window_s or decay_s:
            from ..windows import ExpDecaySketch, WindowedSketch

            if window_s:
                return WindowedSketch(
                    epsilon,
                    window=window_s,
                    slide=slide_s or window_s,
                    engine=engine,
                    policy=policy,
                    n=n,
                    clock=self.clock,
                )
            return ExpDecaySketch(
                epsilon,
                half_life=decay_s,
                engine=engine,
                policy=policy,
                n=n,
                clock=self.clock,
            )
        if engine == "kll":
            return KLLSketch(eps=epsilon, seed=0)
        if engine == "frugal":
            return FrugalSketch(phis=DEFAULT_BANK_PHIS, seed=0)
        if kind == "fixed":
            design_n = DEFAULT_DESIGN_N if n is None else int(n)
            plan = optimal_parameters(epsilon, design_n, policy=policy)
            fw = QuantileFramework(
                plan.b, plan.k, policy=policy, designed_n=design_n
            )
            fw._mode = "numeric"  # the service is numeric-only
            return fw
        return AdaptiveQuantileSketch(
            epsilon,
            initial_capacity=(
                _DEFAULT_ADAPTIVE_CAPACITY if n is None else int(n)
            ),
            policy=policy,
        )

    def create(
        self,
        name: str,
        *,
        kind: str = "fixed",
        epsilon: float = 0.01,
        n: Optional[int] = None,
        policy: str = "new",
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> Tuple[MetricEntry, bool]:
        """Create (or idempotently re-open) a metric.

        Returns ``(entry, created)``.  Re-creating with the *same*
        configuration is a no-op (clients race to CREATE on connect);
        re-creating with a different one raises
        :class:`~repro.core.errors.ConfigurationError`.

        ``engine`` picks the sketch machinery: ``"paper"`` (default)
        honours ``kind``/``n``/``policy``; ``"kll"`` sizes a compactor
        sketch from ``epsilon`` alone; ``"frugal"`` tracks the default
        bank fractions in a few words of state.  The alternative engines
        are inherently stream-length-agnostic, so they require
        ``kind="fixed"`` with no ``n`` (their knobs, not the paper's,
        decide memory).
        """
        if not name or "\n" in name:
            raise ConfigurationError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise ConfigurationError(
                f"metric kind must be one of {_KINDS}, got {kind!r}"
            )
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"metric engine must be one of {_ENGINES}, got {engine!r}"
            )
        if engine != "paper" and (kind != "fixed" or n is not None):
            raise ConfigurationError(
                f"engine {engine!r} metrics are sized by their own knobs: "
                "use kind='fixed' and omit n"
            )
        if window_s and decay_s:
            raise ConfigurationError(
                f"metric {name!r}: a metric is windowed or decayed, "
                "not both"
            )
        if (window_s or decay_s) and kind != "fixed":
            raise ConfigurationError(
                f"metric {name!r}: windowed/decayed metrics must be "
                "kind='fixed'"
            )
        if window_s and not slide_s:
            slide_s = window_s  # tumbling
        config = (
            kind, epsilon, n, policy, engine, window_s, slide_s, decay_s,
        )
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.config_tuple() != config:
                raise ConfigurationError(
                    f"metric {name!r} already exists with configuration "
                    f"{existing.config_tuple()}, requested {config}"
                )
            return existing, False
        sketch = self._build_sketch(
            kind, epsilon, n, policy, engine, window_s, slide_s, decay_s
        )
        return (
            self._register(
                name, kind, epsilon, n, policy, sketch, engine,
                window_s, slide_s, decay_s,
            ),
            True,
        )

    def install_serialized(
        self,
        name: str,
        *,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        engine: str,
        payload: bytes,
    ) -> bool:
        """Install a metric's complete state from its engine wire payload.

        The replace-or-create half of the cluster re-sync protocol (the
        ``RESTORE`` opcode and its journal record): the payload -- as
        produced by :meth:`fetch_serialized` on the donor -- becomes the
        metric's sketch wholesale, under the given configuration.  An
        existing metric of the same name is *replaced* (its old bank row
        is orphaned until the next restart re-adopts a clean registry --
        bounded by the handful of restores a sync performs, and tens of
        kilobytes each).  Returns ``True`` when an existing metric was
        replaced, ``False`` when the name was new here.

        The payload's magic must agree with *engine* -- a donor whose
        config and bytes disagree is corrupt and must not be installed.
        Adaptive paper metrics have no exchange format and are refused,
        same as :meth:`fetch_serialized`.
        """
        from ..core.engines import engine_of

        if not name or "\n" in name:
            raise ConfigurationError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise ConfigurationError(
                f"metric kind must be one of {_KINDS}, got {kind!r}"
            )
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"metric engine must be one of {_ENGINES}, got {engine!r}"
            )
        if kind != "fixed":
            raise ConfigurationError(
                f"metric {name!r} is adaptive; only fixed-N metrics "
                "have an exchange format to restore from"
            )
        actual = engine_of(payload)
        window_s = slide_s = decay_s = 0.0
        sketch: Sketch
        if actual in ("windowed", "expdecay"):
            # windowed payloads are self-describing: the ring carries its
            # inner engine and window/decay config, so the RESTORE wire
            # (which has neither) stays unchanged.  The *declared* engine
            # must still match the ring's inner engine.
            from ..core.engines import loads_any
            from ..windows import ExpDecaySketch, WindowedSketch

            loaded = loads_any(payload)
            if loaded.engine != engine:
                raise ConfigurationError(
                    f"restore of {name!r} declares engine {engine!r} but "
                    f"the {actual} payload's buckets are "
                    f"{loaded.engine!r}; refusing a corrupt install"
                )
            loaded._clock = self.clock
            if isinstance(loaded, WindowedSketch):
                window_s, slide_s = loaded.window_s, loaded.slide_s
            else:
                assert isinstance(loaded, ExpDecaySketch)
                decay_s = loaded.half_life_s
            sketch = loaded
        elif actual != engine:
            raise ConfigurationError(
                f"restore of {name!r} declares engine {engine!r} but the "
                f"payload is {actual!r}; refusing a corrupt install"
            )
        elif engine == "kll":
            sketch = KLLSketch.from_bytes(payload)
        elif engine == "frugal":
            sketch = FrugalSketch.from_bytes(payload)
        else:
            sketch = serialize.loads(payload)
        replaced = self._metrics.pop(name, None) is not None
        self._register(
            name, kind, epsilon, n, policy, sketch, engine,
            window_s, slide_s, decay_s,
        )
        return replaced

    def register_restored(
        self,
        name: str,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        sketch: Sketch,
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> MetricEntry:
        """Attach a sketch rebuilt by the snapshot codec (recovery path)."""
        if name in self._metrics:
            raise ConfigurationError(f"metric {name!r} restored twice")
        if window_s or decay_s:
            sketch._clock = self.clock
        return self._register(
            name, kind, epsilon, n, policy, sketch, engine,
            window_s, slide_s, decay_s,
        )

    def _register(
        self,
        name: str,
        kind: str,
        epsilon: float,
        n: Optional[int],
        policy: str,
        sketch: Sketch,
        engine: str = "paper",
        window_s: float = 0.0,
        slide_s: float = 0.0,
        decay_s: float = 0.0,
    ) -> MetricEntry:
        shard_idx = shard_of(name, self.n_shards)
        bank_id: Optional[int] = None
        if window_s or decay_s:
            # windowed rings manage their own buckets; no bank adoption
            pass
        elif engine == "frugal":
            assert isinstance(sketch, FrugalSketch)
            bank_id = self._shards[shard_idx].fbank.adopt(sketch)
        elif engine == "paper" and kind == "fixed":
            assert isinstance(sketch, QuantileFramework)
            bank_id = self._shards[shard_idx].bank.adopt(sketch)
        entry = MetricEntry(
            name, kind, epsilon, n, policy, shard_idx, sketch, bank_id,
            engine, window_s, slide_s, decay_s,
        )
        self._metrics[name] = entry
        return entry

    # -- ingest ------------------------------------------------------------

    @staticmethod
    def coerce_batch(values: "np.ndarray | list") -> np.ndarray:
        """Validate one ingest batch before it is journaled or queued."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d batch, got shape {arr.shape}"
            )
        if arr.size and not np.isfinite(arr).all():
            raise ConfigurationError(_FINITE_MSG)
        return arr

    def enqueue(
        self, name: str, values: np.ndarray, *, validated: bool = False
    ) -> MetricEntry:
        """Queue a batch on the metric's shard (apply later).

        ``validated=True`` skips re-coercion for callers that already
        ran :meth:`coerce_batch` on this exact array (the server does,
        before journaling) -- the finiteness scan is O(batch) and showed
        up as a double charge on the ingest hot path.
        """
        entry = self.get(name)
        if entry.windowed:
            raise ConfigurationError(
                f"metric {name!r} is windowed; ingest must carry event "
                "time (use enqueue_at/ingest_at)"
            )
        arr = values if validated else self.coerce_batch(values)
        if arr.size:
            self._shards[entry.shard].pending.append((entry, arr, None))
        return entry

    def enqueue_at(
        self,
        name: str,
        values: np.ndarray,
        t: float,
        *,
        validated: bool = False,
    ) -> MetricEntry:
        """Queue a timestamped batch for a windowed/decayed metric.

        *t* is event time in seconds.  The (values, t) pair is what gets
        journaled, so replay reproduces the ring bit-identically no
        matter when it runs.
        """
        entry = self.get(name)
        if not entry.windowed:
            raise ConfigurationError(
                f"metric {name!r} is not windowed; use enqueue/ingest"
            )
        arr = values if validated else self.coerce_batch(values)
        if arr.size:
            self._shards[entry.shard].pending.append((entry, arr, float(t)))
        return entry

    def ingest(self, name: str, values: np.ndarray) -> MetricEntry:
        """Enqueue and immediately apply (the synchronous/replay path)."""
        entry = self.enqueue(name, values)
        self.apply_shard(entry.shard)
        return entry

    def ingest_at(
        self, name: str, values: np.ndarray, t: float
    ) -> MetricEntry:
        """Timestamped enqueue-and-apply (windowed replay path)."""
        entry = self.enqueue_at(name, values, t)
        self.apply_shard(entry.shard)
        return entry

    def pending_batches(self, shard: Optional[int] = None) -> int:
        if shard is not None:
            return len(self._shards[shard].pending)
        return sum(len(s.pending) for s in self._shards)

    def apply_shard(self, shard_idx: int) -> int:
        """Drain one shard's queue through the bank; returns elements applied.

        Queued batches are grouped per metric (arrival order preserved
        within each metric) and fed as one concatenated run through the
        bank's single-sketch fast path -- no cross-metric stable
        partition, so a shard drain costs the same per element as direct
        in-process ingest.  Each sketch still sees exactly its own
        subsequence in arrival order, so the result is bit-identical to
        applying every batch alone, in queue order (the PR-2 bank
        property).
        """
        shard = self._shards[shard_idx]
        if not shard.pending:
            return 0
        pending, shard.pending = shard.pending, []
        applied = 0
        groups: Dict[int, Tuple[MetricEntry, List[np.ndarray]]] = {}
        for entry, arr, t in pending:
            applied += arr.size
            entry.n_batches += 1
            if t is not None:
                # windowed batches go to their own ring, one by one in
                # arrival order -- each carries its own event time, so
                # they must not be concatenated across timestamps
                entry.sketch.extend_at(arr, t)
                continue
            group = groups.get(id(entry))
            if group is None:
                groups[id(entry)] = (entry, [arr])
            else:
                group[1].append(arr)
        frugal_pairs: List[Tuple[int, np.ndarray]] = []
        for entry, arrays in groups.values():
            values = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
            if entry.engine == "frugal":
                # every frugal metric on the shard shares one flat-array
                # bank; collect the runs and make a single kernel pass
                assert entry.bank_id is not None
                frugal_pairs.append((entry.bank_id, values))
            elif entry.bank_id is not None:
                # queued arrays passed coerce_batch before they were
                # journaled/acked; don't re-scan them at apply time
                shard.bank.extend_single(entry.bank_id, values, validated=True)
            else:
                entry.sketch.extend(values)
        if frugal_pairs:
            shard.fbank.extend_pairs(frugal_pairs)
        shard.n_applied += applied
        shard.n_batches_applied += len(pending)
        return applied

    def apply_all(self) -> int:
        return sum(self.apply_shard(i) for i in range(self.n_shards))

    # -- queries (callers must apply the shard first for freshness) --------

    def quantiles(
        self, name: str, phis: List[float]
    ) -> Tuple[List[float], float, int]:
        """``(values, certified Lemma 5 bound in elements, n)`` for *name*."""
        entry = self.get(name)
        sketch = entry.sketch
        if sketch.n == 0:
            raise EmptySummaryError(f"metric {name!r} has no data yet")
        values = [float(v) for v in sketch.quantiles(phis)]
        return values, float(sketch.error_bound()), sketch.n

    def cdf(self, name: str, value: float) -> Tuple[int, float, float, int]:
        """``(rank, fraction, certified bound, n)`` for the inverse query."""
        entry = self.get(name)
        sketch = entry.sketch
        if sketch.n == 0:
            raise EmptySummaryError(f"metric {name!r} has no data yet")
        rank = int(sketch.rank(value))
        return rank, rank / sketch.n, float(sketch.error_bound()), sketch.n

    def fetch_serialized(self, name: str) -> bytes:
        """The metric's summary in its engine's wire format.

        The payload starts with the engine's 8-byte magic, so receivers
        dispatch with :func:`repro.core.engines.loads_any`.  This is the
        shipping half of §4.9 fan-in -- collect payloads from several
        servers and fold them with
        :func:`repro.core.serialize.merge_serialized` (mergeable engines
        only; frugal payloads load and query individually).  Adaptive
        paper metrics still refuse (their staged multi-sketch state has
        no exchange format).
        """
        entry = self.get(name)
        if entry.windowed:
            # the ring's own format (WINSKT01/EXDSKT01): self-describing,
            # mergeable bucket-by-bucket via merge_serialized
            return entry.sketch.to_bytes()
        if entry.engine == "kll":
            assert isinstance(entry.sketch, KLLSketch)
            return entry.sketch.to_bytes()
        if entry.engine == "frugal":
            assert isinstance(entry.sketch, FrugalSketch)
            return entry.sketch.to_bytes()
        if not isinstance(entry.sketch, QuantileFramework):
            raise ConfigurationError(
                f"metric {name!r} is adaptive; only fixed-N metrics "
                "serialise to the exchange format"
            )
        return serialize.dumps(entry.sketch)

    # -- introspection -----------------------------------------------------

    def describe_metrics(self) -> List[Dict[str, object]]:
        return [
            {
                "name": e.name,
                "kind": e.kind,
                "engine": e.engine,
                "n": e.count,
                "memory_elements": e.memory_elements,
                "shard": e.shard,
                "window_s": e.window_s,
                "slide_s": e.slide_s,
                "decay_s": e.decay_s,
            }
            for e in self._metrics.values()
        ]

    def engine_counts(self) -> Dict[str, int]:
        """Metric count per engine (only engines actually in use)."""
        out: Dict[str, int] = {}
        for e in self._metrics.values():
            out[e.engine] = out.get(e.engine, 0) + 1
        return out

    def shard_stats(self) -> List[Dict[str, object]]:
        from ..obs import hooks as obs_hooks

        out = []
        for i, shard in enumerate(self._shards):
            entries = [e for e in self._metrics.values() if e.shard == i]
            stats: Dict[str, object] = {
                "shard": i,
                "metrics": len(entries),
                "elements_applied": shard.n_applied,
                "batches_applied": shard.n_batches_applied,
                "pending_batches": len(shard.pending),
                "collapse_count": sum(
                    e.collapse_count() for e in entries
                ),
                "memory_elements": sum(
                    e.memory_elements for e in entries
                ),
            }
            levels: Dict[int, int] = {}
            for e in entries:
                obs_stats = obs_hooks.collected_stats(e.sketch)
                if obs_stats is not None:
                    for lvl, cnt in obs_stats.collapses_by_level.items():
                        levels[lvl] = levels.get(lvl, 0) + cnt
            if levels:
                stats["collapses_by_level"] = {
                    str(k): v for k, v in sorted(levels.items())
                }
            out.append(stats)
        return out

    @property
    def total_elements(self) -> int:
        return sum(e.count for e in self._metrics.values())
