"""Declarative quantile threshold rules with certified severities.

A :class:`WatchRule` says "alert if the phi-quantile of metric M is
above (or below) T".  The service evaluates rules on its scheduler tick
(and on ``ALERTS evaluate=1``) through the registry's inverse query:
``rank(T)`` -- the number of elements ``<= T`` -- together with the
certified Lemma 5 bound.  Because the estimate's rank error is at most
``bound`` elements, the comparison can be *proved*, not just guessed:

* ``op '>'``: the phi-quantile exceeds T exactly when fewer than
  ``phi * n`` elements are ``<= T``.  The rule fires **definite** when
  ``rank(T) + bound < phi * n`` (even the worst-case estimate error
  cannot un-cross the threshold), **possible** when only the estimate
  crosses (``rank(T) < phi * n``).
* ``op '<'``: symmetric -- definite when ``rank(T) - bound >= phi * n``.

Engines without a certified bound (frugal, ``error_bound() == inf``)
can therefore never fire definite, only possible -- the severity encodes
exactly what the engine guarantees.

Rules are service state like metrics are: WATCH/UNWATCH are journaled
(idempotency-token deduped), so a SIGKILL never loses a rule; the alert
counters ride in the snapshot, so they persist up to the last snapshot
(counters are observability, not data -- they are not re-journaled per
evaluation).  Evaluation is deterministic in (ingested data, injected
clock): no wall-clock reads happen here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["WatchRule", "RuleState", "RuleSet", "RULE_OPS"]

RULE_OPS = (">", "<")

#: evaluation outcomes that count as the rule *firing*
FIRING_STATES = ("definite", "possible")


class WatchRule:
    """One declarative threshold rule (immutable configuration)."""

    __slots__ = ("rule_id", "metric", "phi", "op", "threshold")

    def __init__(
        self,
        rule_id: str,
        metric: str,
        phi: float,
        op: str,
        threshold: float,
    ) -> None:
        if not rule_id or "\n" in rule_id:
            raise ConfigurationError(f"invalid rule id {rule_id!r}")
        if not metric:
            raise ConfigurationError(f"invalid metric name {metric!r}")
        if not (0.0 < phi < 1.0):
            raise ConfigurationError(
                f"rule phi must be in (0, 1), got {phi}"
            )
        if op not in RULE_OPS:
            raise ConfigurationError(
                f"rule operator must be one of {RULE_OPS}, got {op!r}"
            )
        if not math.isfinite(threshold):
            raise ConfigurationError(
                f"rule threshold must be finite, got {threshold}"
            )
        self.rule_id = rule_id
        self.metric = metric
        self.phi = float(phi)
        self.op = op
        self.threshold = float(threshold)

    def config_tuple(self) -> Tuple[str, float, str, float]:
        return (self.metric, self.phi, self.op, self.threshold)


class RuleState:
    """Mutable evaluation state and counters for one rule."""

    __slots__ = (
        "definite_total",
        "possible_total",
        "last_state",
        "last_value",
        "last_eval_t",
        "last_fire_t",
    )

    def __init__(self) -> None:
        self.definite_total = 0
        self.possible_total = 0
        self.last_state = "pending"
        self.last_value: Optional[float] = None
        self.last_eval_t: Optional[float] = None
        self.last_fire_t: Optional[float] = None


class RuleSet:
    """The server's WATCH rules: registration, evaluation, reporting."""

    def __init__(self) -> None:
        self._rules: Dict[str, WatchRule] = {}
        self._states: Dict[str, RuleState] = {}
        self.evaluations = 0

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def rules(self) -> List[WatchRule]:
        return [self._rules[k] for k in sorted(self._rules)]

    def state_of(self, rule_id: str) -> RuleState:
        return self._states[rule_id]

    def add(
        self,
        rule_id: str,
        metric: str,
        phi: float,
        op: str,
        threshold: float,
    ) -> bool:
        """Register a rule; CREATE-style idempotent.

        Returns ``True`` when the rule is new, ``False`` when an
        identical rule already exists; a *different* rule under the same
        id raises :class:`ConfigurationError` (UNWATCH first).
        """
        rule = WatchRule(rule_id, metric, phi, op, threshold)
        existing = self._rules.get(rule_id)
        if existing is not None:
            if existing.config_tuple() != rule.config_tuple():
                raise ConfigurationError(
                    f"rule {rule_id!r} already exists with configuration "
                    f"{existing.config_tuple()}, requested "
                    f"{rule.config_tuple()}"
                )
            return False
        self._rules[rule_id] = rule
        self._states[rule_id] = RuleState()
        return True

    def remove(self, rule_id: str) -> bool:
        """Drop a rule; returns whether it existed."""
        if rule_id not in self._rules:
            return False
        del self._rules[rule_id]
        del self._states[rule_id]
        return True

    def restore_counters(
        self, rule_id: str, definite_total: int, possible_total: int
    ) -> None:
        """Re-arm persisted alert counters (snapshot recovery path)."""
        state = self._states[rule_id]
        state.definite_total = definite_total
        state.possible_total = possible_total

    # -- evaluation --------------------------------------------------------

    @staticmethod
    def _classify(
        rule: WatchRule, rank: int, bound: float, n: int
    ) -> str:
        """One rule against one certified inverse-query answer."""
        target = rule.phi * n
        if rule.op == ">":
            if rank >= target:
                return "ok"
            return "definite" if rank + bound < target else "possible"
        if rank < target:
            return "ok"
        return "definite" if rank - bound >= target else "possible"

    def evaluate(
        self, registry: Any, now: float
    ) -> List[Dict[str, Any]]:
        """Evaluate every rule against *registry* at clock time *now*.

        Pending batches are applied first (rules must see what was
        acked).  Per-rule failures -- unknown metric, empty window --
        become states, never exceptions: one broken rule must not take
        the scheduler down.  Returns the full report (same shape as
        :meth:`describe`).
        """
        from ..obs import hooks as obs_hooks

        registry.apply_all()
        self.evaluations += 1
        obs_reg = obs_hooks.registry()
        for rule in self.rules():
            state = self._states[rule.rule_id]
            state.last_eval_t = now
            try:
                rank, _fraction, bound, n = registry.cdf(
                    rule.metric, rule.threshold
                )
            except EmptySummaryError:
                state.last_state = "no_data"
                state.last_value = None
                continue
            except ConfigurationError:
                state.last_state = "no_metric"
                state.last_value = None
                continue
            except Exception:  # pragma: no cover - defensive
                state.last_state = "error"
                state.last_value = None
                continue
            outcome = self._classify(rule, rank, bound, n)
            state.last_state = outcome
            try:
                (value,), _bound, _n = registry.quantiles(
                    rule.metric, [rule.phi]
                )
                state.last_value = value
            except Exception:  # pragma: no cover - defensive
                state.last_value = None
            if outcome in FIRING_STATES:
                state.last_fire_t = now
                if outcome == "definite":
                    state.definite_total += 1
                else:
                    state.possible_total += 1
                obs_reg.counter(
                    "service.alerts_total",
                    rule=rule.rule_id,
                    state=outcome,
                ).inc()
        obs_reg.counter("service.watch_evaluations").inc()
        return self.describe()

    # -- reporting ---------------------------------------------------------

    def describe(self) -> List[Dict[str, Any]]:
        """One JSON-friendly record per rule, sorted by rule id."""
        out = []
        for rule in self.rules():
            state = self._states[rule.rule_id]
            out.append(
                {
                    "rule_id": rule.rule_id,
                    "metric": rule.metric,
                    "phi": rule.phi,
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "state": state.last_state,
                    "last_value": state.last_value,
                    "last_eval_t": state.last_eval_t,
                    "last_fire_t": state.last_fire_t,
                    "definite_total": state.definite_total,
                    "possible_total": state.possible_total,
                }
            )
        return out

    def alert_totals(self) -> Dict[str, int]:
        return {
            "definite": sum(
                s.definite_total for s in self._states.values()
            ),
            "possible": sum(
                s.possible_total for s in self._states.values()
            ),
        }
