"""The service wire protocol: length-prefixed binary frames.

Every message -- request or response -- travels as one *frame*::

    u32 length | payload (length bytes)

with a request payload of ``u8 opcode | body`` and a response payload of
``u8 status | body`` (status 0 = OK, 1 = error with a UTF-8 message).
All integers are little-endian; value arrays are raw ``float64``.  The
format is self-delimiting and carries no code (no pickle): both ends
validate opcode, lengths and value finiteness and fail with
:class:`~repro.core.errors.StorageError` /
:class:`~repro.core.errors.ConfigurationError` on malformed input.

The codec here is transport-agnostic and synchronous -- pure
``bytes -> message`` functions plus blocking-socket frame helpers -- so
the asyncio server, the blocking client, tests and shell tools all share
one implementation.  Sketch payloads (the ``FETCH`` response) reuse
:mod:`repro.core.serialize` verbatim, which is what makes shard fan-in
(:func:`repro.core.serialize.merge_serialized`) work across processes.

Zero-copy fast path: :func:`decode_request` accepts any buffer
(``bytes``, ``bytearray``, ``memoryview``) and decodes ``INGEST`` value
arrays as read-only ``np.frombuffer`` views *into that buffer* -- no
per-batch copy.  The view pins the receive buffer until the batch is
applied, which is exactly the lifetime the server's shard queues give
it.  On the sending side :func:`encode_ingest_framed` assembles the
entire length-prefixed frame in one preallocated buffer, so a batch is
copied exactly once between the caller's array and the socket.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, StorageError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MUTATING_OPCODES",
    "Opcode",
    "Request",
    "encode_request",
    "encode_request_framed",
    "encode_ingest_framed",
    "decode_request",
    "encode_ok",
    "encode_error",
    "decode_response",
    "recv_frame",
    "send_frame",
]

#: version 2 added the u64 idempotency token to CREATE/INGEST/SNAPSHOT
PROTOCOL_VERSION = 2

#: Upper bound on a single frame's payload; an ingest batch of 4 Mi
#: float64 values fits with room for headers.  Guards both ends against
#: a corrupt length prefix allocating unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

_STATUS_OK = 0
_STATUS_ERROR = 1


class Opcode:
    """Request opcodes (u8)."""

    CREATE = 1
    INGEST = 2
    QUERY = 3
    CDF = 4
    LIST = 5
    FETCH = 6
    SNAPSHOT = 7
    DRAIN = 8
    STATS = 9
    PING = 10
    SYNCPULL = 11
    RESTORE = 12
    WATCH = 13
    UNWATCH = 14
    ALERTS = 15

    _NAMES = {
        1: "CREATE", 2: "INGEST", 3: "QUERY", 4: "CDF", 5: "LIST",
        6: "FETCH", 7: "SNAPSHOT", 8: "DRAIN", 9: "STATS", 10: "PING",
        11: "SYNCPULL", 12: "RESTORE", 13: "WATCH", 14: "UNWATCH",
        15: "ALERTS",
    }


#: opcodes that mutate server state: they carry an idempotency token so a
#: retry after a lost ack is applied exactly once (see the registry's
#: dedup window)
MUTATING_OPCODES = frozenset(
    {
        Opcode.CREATE,
        Opcode.INGEST,
        Opcode.SNAPSHOT,
        Opcode.RESTORE,
        Opcode.WATCH,
        Opcode.UNWATCH,
    }
)


#: metric kinds on the wire (u8)
KIND_FIXED = 0
KIND_ADAPTIVE = 1
_KIND_NAMES = {KIND_FIXED: "fixed", KIND_ADAPTIVE: "adaptive"}
_KIND_IDS = {v: k for k, v in _KIND_NAMES.items()}

#: sketch engines on the wire (u8); CREATE encodes the engine as an
#: *optional trailing* byte -- a paper-engine request is byte-identical
#: to the pre-engine format, so old clients and old servers interoperate
ENGINE_PAPER = 0
ENGINE_KLL = 1
ENGINE_FRUGAL = 2
_ENGINE_NAMES = {ENGINE_PAPER: "paper", ENGINE_KLL: "kll", ENGINE_FRUGAL: "frugal"}
_ENGINE_IDS = {v: k for k, v in _ENGINE_NAMES.items()}

#: window modes in the CREATE config block (u8).  When a CREATE carries a
#: window/decay config, the engine byte (above) is *forced* -- even for
#: paper -- so the decode order stays unambiguous; plain CREATEs keep the
#: optional-trailing-byte compatibility story unchanged.
WMODE_NONE = 0
WMODE_WINDOW = 1  # p1 = window seconds, p2 = slide seconds
WMODE_DECAY = 2  # p1 = half-life seconds, p2 = 0

#: WATCH comparison operators (u8)
_RULE_OPS = {">": 0, "<": 1}
_RULE_OP_NAMES = {v: k for k, v in _RULE_OPS.items()}


@dataclass
class Request:
    """A decoded request: opcode plus its (opcode-specific) fields."""

    opcode: int
    name: str = ""
    kind: str = "fixed"
    epsilon: float = 0.01
    n: Optional[int] = None
    policy: str = "new"
    values: Optional[np.ndarray] = None
    phis: List[float] = field(default_factory=list)
    value: float = 0.0
    #: client-generated idempotency token on mutating ops (0 = none)
    token: int = 0
    #: sketch engine for CREATE ("paper" rides for free on the wire; the
    #: others add one trailing byte)
    engine: str = "paper"
    #: STATS verbosity (0 = summary; 1 adds the rendered Prometheus
    #: exposition).  Encoded as an optional trailing byte so old clients
    #: and old servers interoperate unchanged.
    detail: int = 0
    #: SYNCPULL: journal sequence the caller has already applied; the
    #: donor answers with the tail of records after it (0 = first round,
    #: full payload only)
    after_seq: int = 0
    #: RESTORE: the full serialised engine payload to install
    payload: bytes = b""
    #: CREATE: window span in seconds (0 = not windowed)
    window_s: float = 0.0
    #: CREATE: bucket slide in seconds (0 = tumbling, i.e. == window_s)
    slide_s: float = 0.0
    #: CREATE: exponential-decay half-life in seconds (0 = no decay)
    decay_s: float = 0.0
    #: WATCH: metric the rule watches (``name`` carries the rule id)
    metric: str = ""
    #: WATCH: quantile fraction the rule evaluates
    phi: float = 0.0
    #: WATCH: threshold the quantile is compared against
    threshold: float = 0.0
    #: WATCH: comparison operator, ``">"`` or ``"<"``
    rule_op: str = ">"


# -- primitive writers/readers ------------------------------------------------


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ConfigurationError(f"string too long for the wire ({len(raw)} bytes)")
    return _U16.pack(len(raw)) + raw


class _Reader:
    """Cursor over one frame's payload with bounds-checked reads.

    Accepts any C-contiguous buffer (``bytes``, ``bytearray``,
    ``memoryview``); slices it returns are views of the same type, so a
    caller holding a zero-copy receive buffer never pays a copy here.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, buf: "bytes | bytearray | memoryview") -> None:
        self.buf = buf
        self.pos = 0

    def take(self, size: int, what: str) -> "bytes | bytearray | memoryview":
        end = self.pos + size
        if end > len(self.buf):
            raise StorageError(f"truncated frame: expected {size} bytes of {what}")
        raw = self.buf[self.pos : end]
        self.pos = end
        return raw

    def u8(self, what: str) -> int:
        return self.take(1, what)[0]

    def u16(self, what: str) -> int:
        return _U16.unpack(self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack(self.take(8, what))[0]

    def f64(self, what: str) -> float:
        return _F64.unpack(self.take(8, what))[0]

    def string(self, what: str) -> str:
        n = self.u16(what)
        return bytes(self.take(n, what)).decode("utf-8")

    def f64_array(self, count: int, what: str) -> np.ndarray:
        return np.frombuffer(self.take(8 * count, what), dtype="<f8").copy()

    def f64_array_view(self, count: int, what: str) -> np.ndarray:
        """Like :meth:`f64_array` but zero-copy: a read-only view into the
        frame buffer.  The returned array pins the buffer alive; callers
        must not outlive the buffer's validity window (receive buffers
        here are immutable ``bytes`` chunks, so any lifetime is safe)."""
        size = 8 * count
        end = self.pos + size
        if end > len(self.buf):
            raise StorageError(
                f"truncated frame: expected {size} bytes of {what}"
            )
        arr = np.frombuffer(
            self.buf, dtype="<f8", count=count, offset=self.pos
        )
        self.pos = end
        return arr

    def done(self, what: str) -> None:
        if self.pos != len(self.buf):
            raise StorageError(
                f"malformed {what}: {len(self.buf) - self.pos} trailing bytes"
            )


# -- requests -----------------------------------------------------------------


def encode_request(req: Request) -> bytes:
    """Serialise *req* into one frame payload (no length prefix)."""
    op = req.opcode
    out = [bytes([op])]
    if op == Opcode.CREATE:
        if req.kind not in _KIND_IDS:
            raise ConfigurationError(f"unknown metric kind {req.kind!r}")
        out.append(_pack_str(req.name))
        out.append(_U64.pack(req.token))
        out.append(bytes([_KIND_IDS[req.kind]]))
        out.append(_F64.pack(req.epsilon))
        out.append(_U64.pack(0 if req.n is None else int(req.n)))
        out.append(_pack_str(req.policy))
        windowed = bool(req.window_s or req.decay_s)
        if req.window_s and req.decay_s:
            raise ConfigurationError(
                "a metric is windowed or decayed, not both"
            )
        if req.engine != "paper" or windowed:
            if req.engine not in _ENGINE_IDS:
                raise ConfigurationError(
                    f"unknown sketch engine {req.engine!r}"
                )
            out.append(bytes([_ENGINE_IDS[req.engine]]))
        if windowed:
            if req.window_s:
                out.append(bytes([WMODE_WINDOW]))
                out.append(_F64.pack(req.window_s))
                out.append(_F64.pack(req.slide_s or req.window_s))
            else:
                out.append(bytes([WMODE_DECAY]))
                out.append(_F64.pack(req.decay_s))
                out.append(_F64.pack(0.0))
    elif op == Opcode.INGEST:
        values = np.ascontiguousarray(req.values, dtype="<f8")
        out.append(_pack_str(req.name))
        out.append(_U64.pack(req.token))
        out.append(_U32.pack(values.size))
        out.append(values.tobytes())
    elif op == Opcode.QUERY:
        out.append(_pack_str(req.name))
        out.append(_U16.pack(len(req.phis)))
        out.append(np.asarray(req.phis, dtype="<f8").tobytes())
    elif op == Opcode.CDF:
        out.append(_pack_str(req.name))
        out.append(_F64.pack(req.value))
    elif op == Opcode.FETCH:
        out.append(_pack_str(req.name))
    elif op == Opcode.SYNCPULL:
        out.append(_pack_str(req.name))
        out.append(_U64.pack(req.after_seq))
    elif op == Opcode.RESTORE:
        if req.kind not in _KIND_IDS:
            raise ConfigurationError(f"unknown metric kind {req.kind!r}")
        if req.engine not in _ENGINE_IDS:
            raise ConfigurationError(
                f"unknown sketch engine {req.engine!r}"
            )
        out.append(_pack_str(req.name))
        out.append(_U64.pack(req.token))
        out.append(bytes([_KIND_IDS[req.kind]]))
        out.append(_F64.pack(req.epsilon))
        out.append(_U64.pack(0 if req.n is None else int(req.n)))
        out.append(_pack_str(req.policy))
        out.append(bytes([_ENGINE_IDS[req.engine]]))
        out.append(_U32.pack(len(req.payload)))
        out.append(req.payload)
    elif op == Opcode.SNAPSHOT:
        out.append(_U64.pack(req.token))
    elif op == Opcode.STATS:
        # the detail byte is optional on the wire: a zero-detail request
        # is byte-identical to the pre-detail format
        if req.detail:
            out.append(bytes([req.detail & 0xFF]))
    elif op == Opcode.WATCH:
        if req.rule_op not in _RULE_OPS:
            raise ConfigurationError(
                f"unknown rule operator {req.rule_op!r}; use '>' or '<'"
            )
        out.append(_pack_str(req.name))  # rule id
        out.append(_U64.pack(req.token))
        out.append(_pack_str(req.metric))
        out.append(_F64.pack(req.phi))
        out.append(bytes([_RULE_OPS[req.rule_op]]))
        out.append(_F64.pack(req.threshold))
    elif op == Opcode.UNWATCH:
        out.append(_pack_str(req.name))  # rule id
        out.append(_U64.pack(req.token))
    elif op == Opcode.ALERTS:
        # optional trailing byte: 1 = evaluate all rules now (with the
        # server's clock) before reporting, 0/absent = report as-is
        if req.detail:
            out.append(bytes([req.detail & 0xFF]))
    elif op in (Opcode.LIST, Opcode.DRAIN, Opcode.PING):
        pass
    else:
        raise ConfigurationError(f"unknown opcode {op}")
    return b"".join(out)


def encode_ingest_framed(
    name: str,
    values: "np.ndarray | Sequence[float]",
    token: int = 0,
) -> bytearray:
    """Encode one INGEST request as a complete length-prefixed frame.

    The frame -- ``u32 length | u8 opcode | name | u64 token |
    u32 count | values`` -- is assembled in a single preallocated
    buffer, so the batch is copied exactly once (caller array -> wire
    buffer).  The plain :func:`encode_request` + :func:`frame` pair
    copies the same data three times (``tobytes``, payload join, length
    prefix join); on the hot pipelined-ingest path that difference is
    measurable.  Byte-for-byte identical to the two-step encoding.
    """
    arr = np.ascontiguousarray(values, dtype="<f8")
    if arr.ndim != 1:
        raise ConfigurationError(
            f"expected a 1-d batch, got shape {arr.shape}"
        )
    name_raw = name.encode("utf-8")
    if len(name_raw) > 0xFFFF:
        raise ConfigurationError(
            f"string too long for the wire ({len(name_raw)} bytes)"
        )
    payload_len = 1 + 2 + len(name_raw) + 8 + 4 + arr.nbytes
    if payload_len > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"frame of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    buf = bytearray(4 + payload_len)
    _U32.pack_into(buf, 0, payload_len)
    buf[4] = Opcode.INGEST
    _U16.pack_into(buf, 5, len(name_raw))
    pos = 7 + len(name_raw)
    buf[7:pos] = name_raw
    _U64.pack_into(buf, pos, token)
    _U32.pack_into(buf, pos + 8, arr.size)
    buf[pos + 12 :] = arr.data.cast("B")
    return buf


def encode_request_framed(req: Request) -> "bytes | bytearray":
    """Serialise *req* as one complete frame (length prefix included).

    INGEST takes the single-copy fast path above; every other opcode is
    small and goes through the plain codec.
    """
    if req.opcode == Opcode.INGEST:
        assert req.values is not None
        return encode_ingest_framed(req.name, req.values, req.token)
    return frame(encode_request(req))


def decode_request(payload: "bytes | bytearray | memoryview") -> Request:
    """Parse one request frame payload.

    *payload* may be any buffer type.  ``INGEST`` values come back as a
    read-only zero-copy view into *payload* (the server feeds them
    straight into the batched presorted ingest kernel); every other
    field is materialised as usual.
    """
    r = _Reader(payload)
    op = r.u8("opcode")
    req = Request(opcode=op)
    if op == Opcode.CREATE:
        req.name = r.string("metric name")
        req.token = r.u64("idempotency token")
        kind_id = r.u8("metric kind")
        if kind_id not in _KIND_NAMES:
            raise StorageError(f"unknown metric kind id {kind_id}")
        req.kind = _KIND_NAMES[kind_id]
        req.epsilon = r.f64("epsilon")
        n = r.u64("n")
        req.n = None if n == 0 else n
        req.policy = r.string("policy")
        if r.pos != len(r.buf):  # old clients send no engine byte
            engine_id = r.u8("sketch engine")
            if engine_id not in _ENGINE_NAMES:
                raise StorageError(f"unknown sketch engine id {engine_id}")
            req.engine = _ENGINE_NAMES[engine_id]
        if r.pos != len(r.buf):  # window/decay config block
            wmode = r.u8("window mode")
            p1 = r.f64("window p1")
            p2 = r.f64("window p2")
            if wmode == WMODE_WINDOW:
                req.window_s, req.slide_s = p1, p2
            elif wmode == WMODE_DECAY:
                req.decay_s = p1
            elif wmode != WMODE_NONE:
                raise StorageError(f"unknown window mode {wmode}")
    elif op == Opcode.INGEST:
        req.name = r.string("metric name")
        req.token = r.u64("idempotency token")
        count = r.u32("value count")
        req.values = r.f64_array_view(count, "values")
    elif op == Opcode.QUERY:
        req.name = r.string("metric name")
        count = r.u16("phi count")
        req.phis = list(r.f64_array(count, "phis"))
    elif op == Opcode.CDF:
        req.name = r.string("metric name")
        req.value = r.f64("value")
    elif op == Opcode.FETCH:
        req.name = r.string("metric name")
    elif op == Opcode.SYNCPULL:
        req.name = r.string("metric name")
        req.after_seq = r.u64("after seq")
    elif op == Opcode.RESTORE:
        req.name = r.string("metric name")
        req.token = r.u64("idempotency token")
        kind_id = r.u8("metric kind")
        if kind_id not in _KIND_NAMES:
            raise StorageError(f"unknown metric kind id {kind_id}")
        req.kind = _KIND_NAMES[kind_id]
        req.epsilon = r.f64("epsilon")
        n = r.u64("n")
        req.n = None if n == 0 else n
        req.policy = r.string("policy")
        engine_id = r.u8("sketch engine")
        if engine_id not in _ENGINE_NAMES:
            raise StorageError(f"unknown sketch engine id {engine_id}")
        req.engine = _ENGINE_NAMES[engine_id]
        size = r.u32("payload size")
        req.payload = bytes(r.take(size, "restore payload"))
    elif op == Opcode.SNAPSHOT:
        req.token = r.u64("idempotency token")
    elif op == Opcode.STATS:
        if r.pos != len(r.buf):  # old clients send no detail byte
            req.detail = r.u8("stats detail")
    elif op == Opcode.WATCH:
        req.name = r.string("rule id")
        req.token = r.u64("idempotency token")
        req.metric = r.string("metric name")
        req.phi = r.f64("phi")
        op_id = r.u8("rule operator")
        if op_id not in _RULE_OP_NAMES:
            raise StorageError(f"unknown rule operator id {op_id}")
        req.rule_op = _RULE_OP_NAMES[op_id]
        req.threshold = r.f64("threshold")
    elif op == Opcode.UNWATCH:
        req.name = r.string("rule id")
        req.token = r.u64("idempotency token")
    elif op == Opcode.ALERTS:
        if r.pos != len(r.buf):
            req.detail = r.u8("evaluate flag")
    elif op in (Opcode.LIST, Opcode.DRAIN, Opcode.PING):
        pass
    else:
        raise StorageError(f"unknown opcode {op}")
    r.done(f"{Opcode._NAMES.get(op, op)} request")
    return req


# -- responses ----------------------------------------------------------------


def encode_error(message: str) -> bytes:
    raw = message.encode("utf-8")[:0xFFFF]
    return bytes([_STATUS_ERROR]) + _U16.pack(len(raw)) + raw


def encode_ok(opcode: int, body: Dict[str, Any]) -> bytes:
    """Serialise a success response for *opcode* from *body* fields."""
    out = [bytes([_STATUS_OK])]
    if opcode == Opcode.CREATE:
        out.append(bytes([1 if body["created"] else 0]))
    elif opcode == Opcode.INGEST:
        out.append(_U64.pack(body["seq"]))
        out.append(_U32.pack(body["count"]))
    elif opcode == Opcode.QUERY:
        out.append(_U64.pack(body["n"]))
        out.append(_F64.pack(body["error_bound"]))
        values = np.asarray(body["values"], dtype="<f8")
        out.append(_U16.pack(values.size))
        out.append(values.tobytes())
    elif opcode == Opcode.CDF:
        out.append(_U64.pack(body["n"]))
        out.append(_F64.pack(body["error_bound"]))
        out.append(_U64.pack(body["rank"]))
        out.append(_F64.pack(body["fraction"]))
    elif opcode == Opcode.LIST:
        metrics: Sequence[Dict[str, Any]] = body["metrics"]
        out.append(_U32.pack(len(metrics)))
        for m in metrics:
            out.append(_pack_str(m["name"]))
            out.append(bytes([_KIND_IDS[m["kind"]]]))
            out.append(_U64.pack(m["n"]))
            out.append(_U64.pack(m["memory_elements"]))
            out.append(_U32.pack(m["shard"]))
            out.append(bytes([_ENGINE_IDS[m.get("engine", "paper")]]))
            out.append(_F64.pack(m.get("window_s", 0.0)))
            out.append(_F64.pack(m.get("slide_s", 0.0)))
            out.append(_F64.pack(m.get("decay_s", 0.0)))
    elif opcode == Opcode.FETCH:
        payload: bytes = body["payload"]
        out.append(_U32.pack(len(payload)))
        out.append(payload)
    elif opcode == Opcode.SYNCPULL:
        # one atomic view of the donor: config + full payload + the
        # journal tail after the caller's seq, all mutually consistent
        out.append(bytes([1 if body["rebase"] else 0]))
        out.append(bytes([_KIND_IDS[body["kind"]]]))
        out.append(_F64.pack(body["epsilon"]))
        out.append(_U64.pack(0 if body["n"] is None else int(body["n"])))
        out.append(_pack_str(body["policy"]))
        out.append(bytes([_ENGINE_IDS[body["engine"]]]))
        out.append(_U64.pack(body["seq"]))
        sync_payload: bytes = body["payload"]
        out.append(_U32.pack(len(sync_payload)))
        out.append(sync_payload)
        records = body["records"]
        out.append(_U32.pack(len(records)))
        for seq, token, values in records:
            arr = np.ascontiguousarray(values, dtype="<f8")
            out.append(_U64.pack(seq))
            out.append(_U64.pack(token))
            out.append(_U32.pack(arr.size))
            out.append(arr.tobytes())
    elif opcode == Opcode.RESTORE:
        out.append(bytes([1 if body["replaced"] else 0]))
        out.append(_U64.pack(body["seq"]))
    elif opcode == Opcode.SNAPSHOT:
        out.append(_U64.pack(body["seq"]))
        out.append(_pack_str(body["path"]))
    elif opcode == Opcode.DRAIN:
        out.append(_U64.pack(body["seq"]))
    elif opcode == Opcode.STATS:
        raw = json.dumps(body["stats"], sort_keys=True).encode("utf-8")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif opcode == Opcode.PING:
        # route metadata: which node answered, under which cluster epoch
        out.append(_pack_str(body["node_id"]))
        out.append(_U64.pack(body["epoch"]))
        out.append(_F64.pack(body["uptime_s"]))
        out.append(_U32.pack(body["n_metrics"]))
        out.append(_U64.pack(body["elements"]))
    elif opcode == Opcode.WATCH:
        out.append(bytes([1 if body["added"] else 0]))
    elif opcode == Opcode.UNWATCH:
        out.append(bytes([1 if body["removed"] else 0]))
    elif opcode == Opcode.ALERTS:
        raw = json.dumps(body["alerts"], sort_keys=True).encode("utf-8")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    else:
        raise ConfigurationError(f"unknown opcode {opcode}")
    return b"".join(out)


def decode_response(opcode: int, payload: bytes) -> Dict[str, Any]:
    """Parse a response payload for a request of *opcode*.

    Raises :class:`~repro.core.errors.ReproError` subclasses: a server
    error frame re-raises as :class:`ConfigurationError` with the server's
    message; a malformed frame raises :class:`StorageError`.
    """
    r = _Reader(payload)
    status = r.u8("status")
    if status == _STATUS_ERROR:
        raise ConfigurationError(f"server error: {r.string('error message')}")
    if status != _STATUS_OK:
        raise StorageError(f"unknown response status {status}")
    body: Dict[str, Any] = {}
    if opcode == Opcode.CREATE:
        body["created"] = bool(r.u8("created flag"))
    elif opcode == Opcode.INGEST:
        body["seq"] = r.u64("seq")
        body["count"] = r.u32("count")
    elif opcode == Opcode.QUERY:
        body["n"] = r.u64("n")
        body["error_bound"] = r.f64("error bound")
        count = r.u16("value count")
        body["values"] = list(r.f64_array(count, "values"))
    elif opcode == Opcode.CDF:
        body["n"] = r.u64("n")
        body["error_bound"] = r.f64("error bound")
        body["rank"] = r.u64("rank")
        body["fraction"] = r.f64("fraction")
    elif opcode == Opcode.LIST:
        count = r.u32("metric count")
        metrics = []
        for _ in range(count):
            name = r.string("metric name")
            kind = _KIND_NAMES[r.u8("metric kind")]
            n = r.u64("n")
            memory = r.u64("memory")
            shard = r.u32("shard")
            engine = _ENGINE_NAMES[r.u8("metric engine")]
            window_s = r.f64("window seconds")
            slide_s = r.f64("slide seconds")
            decay_s = r.f64("decay seconds")
            metrics.append(
                {
                    "name": name,
                    "kind": kind,
                    "n": n,
                    "memory_elements": memory,
                    "shard": shard,
                    "engine": engine,
                    "window_s": window_s,
                    "slide_s": slide_s,
                    "decay_s": decay_s,
                }
            )
        body["metrics"] = metrics
    elif opcode == Opcode.FETCH:
        size = r.u32("payload size")
        body["payload"] = r.take(size, "sketch payload")
    elif opcode == Opcode.SYNCPULL:
        body["rebase"] = bool(r.u8("rebase flag"))
        kind_id = r.u8("metric kind")
        if kind_id not in _KIND_NAMES:
            raise StorageError(f"unknown metric kind id {kind_id}")
        body["kind"] = _KIND_NAMES[kind_id]
        body["epsilon"] = r.f64("epsilon")
        n = r.u64("n")
        body["n"] = None if n == 0 else n
        body["policy"] = r.string("policy")
        engine_id = r.u8("sketch engine")
        if engine_id not in _ENGINE_NAMES:
            raise StorageError(f"unknown sketch engine id {engine_id}")
        body["engine"] = _ENGINE_NAMES[engine_id]
        body["seq"] = r.u64("seq")
        size = r.u32("payload size")
        body["payload"] = bytes(r.take(size, "sketch payload"))
        n_records = r.u32("record count")
        records = []
        for _ in range(n_records):
            rec_seq = r.u64("record seq")
            rec_token = r.u64("record token")
            count = r.u32("record value count")
            records.append(
                (rec_seq, rec_token, r.f64_array(count, "record values"))
            )
        body["records"] = records
    elif opcode == Opcode.RESTORE:
        body["replaced"] = bool(r.u8("replaced flag"))
        body["seq"] = r.u64("seq")
    elif opcode == Opcode.SNAPSHOT:
        body["seq"] = r.u64("seq")
        body["path"] = r.string("path")
    elif opcode == Opcode.DRAIN:
        body["seq"] = r.u64("seq")
    elif opcode == Opcode.STATS:
        size = r.u32("stats size")
        body["stats"] = json.loads(r.take(size, "stats json").decode("utf-8"))
    elif opcode == Opcode.PING:
        body["node_id"] = r.string("node id")
        body["epoch"] = r.u64("cluster epoch")
        body["uptime_s"] = r.f64("uptime")
        body["n_metrics"] = r.u32("metric count")
        body["elements"] = r.u64("ingested elements")
    elif opcode == Opcode.WATCH:
        body["added"] = bool(r.u8("added flag"))
    elif opcode == Opcode.UNWATCH:
        body["removed"] = bool(r.u8("removed flag"))
    elif opcode == Opcode.ALERTS:
        size = r.u32("alerts size")
        body["alerts"] = json.loads(
            bytes(r.take(size, "alerts json")).decode("utf-8")
        )
    else:
        raise ConfigurationError(f"unknown opcode {opcode}")
    r.done(f"{Opcode._NAMES.get(opcode, opcode)} response")
    return body


# -- blocking-socket framing (client side, tests, shell tools) ----------------


def frame(payload: bytes) -> bytes:
    """Prefix *payload* with its u32 length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _U32.pack(len(payload)) + payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(frame(payload))


def _recv_exact(sock: socket.socket, size: int, what: str) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            raise StorageError(
                f"connection closed mid-frame ({remaining} bytes of "
                f"{what} missing)"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from a blocking socket."""
    (length,) = _U32.unpack(_recv_exact(sock, 4, "frame length"))
    if length > MAX_FRAME_BYTES:
        raise StorageError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _recv_exact(sock, length, "frame payload")
