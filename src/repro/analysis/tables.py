"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows the paper's Tables 1-3 report, plus the
Figure 7/8 series as aligned columns.  No plotting dependency: a reader
diffing against the paper wants the numbers, and the "figures" are
monotone curves that read fine as columns (the crossovers and orderings --
the reproduction target -- are visible directly).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_memory", "ascii_series"]


def format_memory(elements: "int | float") -> str:
    """Render an element count the way Table 1 does: ``2.6 K``, ``1.1 M``."""
    if elements >= 10**6:
        return f"{elements / 10**6:.1f} M"
    if elements >= 1000:
        return f"{elements / 1000:.1f} K"
    return f"{elements:.0f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Monospace-align *rows* under *headers* (right-aligned numbers)."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append(
            [
                f"{cell:.5f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(r[i]) for r in str_rows) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(str_rows[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    series: "dict[str, Sequence[float]]",
    *,
    width: int = 60,
    log_y: bool = False,
) -> str:
    """A crude ASCII profile of several y-series over shared x values.

    Each series is scaled to *width* characters; one row per x.  Good
    enough to eyeball orderings and crossovers (which is all the figure
    reproductions assert).
    """
    import math

    all_vals = [v for vs in series.values() for v in vs]
    if not all_vals:
        return "(empty)"

    def scale(v: float) -> float:
        return math.log10(max(v, 1e-12)) if log_y else v

    lo = min(scale(v) for v in all_vals)
    hi = max(scale(v) for v in all_vals)
    span = (hi - lo) or 1.0
    lines = []
    markers = "*+o#@%"
    lines.append(
        "legend: "
        + ", ".join(
            f"{markers[i % len(markers)]}={name}"
            for i, name in enumerate(series)
        )
    )
    for xi, x in enumerate(xs):
        row = [" "] * (width + 1)
        for si, (name, vs) in enumerate(series.items()):
            pos = int((scale(vs[xi]) - lo) / span * width)
            row[pos] = markers[si % len(markers)]
        lines.append(f"{x:>12.4g} |{''.join(row)}")
    return "\n".join(lines)
