"""Memory accounting helpers.

The paper measures memory in *elements* (the ``b * k`` buffer footprint,
"but for a small amount of memory required for book-keeping purposes",
Section 3).  These helpers convert the library's structures into that
currency so benchmark tables line up with Table 1, and add an honest
bookkeeping estimate for readers who want bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["MemoryReport", "report_memory"]

_BYTES_PER_ELEMENT = 8  # float64, as everywhere in this reproduction


@dataclass(frozen=True)
class MemoryReport:
    """Element and byte footprint of a summary structure."""

    elements: int  #: the paper's currency: resident data elements
    bookkeeping_bytes: int  #: weights, levels, counters, marker state, ...

    @property
    def data_bytes(self) -> int:
        return self.elements * _BYTES_PER_ELEMENT

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.bookkeeping_bytes

    def __str__(self) -> str:
        return (
            f"{self.elements} elements "
            f"({self.total_bytes} bytes incl. bookkeeping)"
        )


def report_memory(summary: Any) -> MemoryReport:
    """Best-effort :class:`MemoryReport` for any summary object.

    Uses the object's ``memory_elements`` (present on every summary in this
    library) and estimates bookkeeping from the structure type:

    * framework-like objects pay ~32 bytes per buffer (weight, level,
      pad counts) plus fixed counters;
    * baselines pay a small constant.
    """
    elements = int(getattr(summary, "memory_elements"))
    n_buffers = getattr(summary, "b", None)
    if n_buffers is not None:
        bookkeeping = 64 + 32 * int(n_buffers)
    else:
        bookkeeping = 64
    return MemoryReport(elements=elements, bookkeeping_bytes=bookkeeping)
