"""Measurement utilities: observed epsilon (Section 6), memory, tables,
and a one-pass ``describe()`` distribution report."""

from .describe import Description, describe
from .memory import MemoryReport, report_memory
from .rank_error import (
    QuantileEvaluation,
    evaluate,
    observed_epsilon,
    observed_rank_error,
)
from .tables import ascii_series, format_memory, format_table

__all__ = [
    "describe",
    "Description",
    "observed_rank_error",
    "observed_epsilon",
    "evaluate",
    "QuantileEvaluation",
    "MemoryReport",
    "report_memory",
    "format_table",
    "format_memory",
    "ascii_series",
]
