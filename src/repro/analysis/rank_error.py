"""Measuring observed rank error -- the methodology of Section 6.

The paper's simulation results report the **observed epsilon**: for each
requested ``phi``, how far (as a fraction of N) the returned element's true
rank is from ``ceil(phi N)``.  *"Note that the exact values of data
elements are of no consequence.  It is the permutation of their ranks in
sorted order that matters."*

With duplicated values an estimate occupies a rank *interval*; the error is
the distance from the target rank to the nearest rank the value actually
holds (zero when the target falls inside the interval).  That is the
fairest reading -- any occupant of the interval is "the" element at those
ranks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["observed_rank_error", "observed_epsilon", "QuantileEvaluation", "evaluate"]


def observed_rank_error(
    sorted_data: np.ndarray, phi: float, estimate: float
) -> int:
    """Absolute rank distance of *estimate* from the true ``phi``-quantile.

    *sorted_data* must be ascending.  Returns 0 when the estimate's rank
    interval covers ``ceil(phi n)``.
    """
    n = len(sorted_data)
    if n == 0:
        raise EmptySummaryError("rank error against empty data")
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    target = min(max(math.ceil(phi * n), 1), n)
    lo = int(np.searchsorted(sorted_data, estimate, side="left")) + 1
    hi = int(np.searchsorted(sorted_data, estimate, side="right"))
    if hi < lo:
        # estimate not present in the data (interpolating baselines):
        # it separates ranks hi and lo; distance to the nearer side.
        return min(abs(target - hi), abs(target - lo))
    if lo <= target <= hi:
        return 0
    return min(abs(target - lo), abs(target - hi))


def observed_epsilon(
    sorted_data: np.ndarray, phi: float, estimate: float
) -> float:
    """Observed rank error as a fraction of N (the Table 3 statistic)."""
    return observed_rank_error(sorted_data, phi, estimate) / len(sorted_data)


@dataclass(frozen=True)
class QuantileEvaluation:
    """Observed errors for a batch of quantile estimates."""

    phis: List[float]
    estimates: List[float]
    errors: List[float]  #: observed epsilon per phi

    @property
    def max_error(self) -> float:
        return max(self.errors)

    @property
    def mean_error(self) -> float:
        return sum(self.errors) / len(self.errors)


def evaluate(
    data: np.ndarray,
    phis: Sequence[float],
    estimates: Sequence[float],
    *,
    presorted: bool = False,
) -> QuantileEvaluation:
    """Observed epsilon for every ``(phi, estimate)`` pair against *data*."""
    if len(phis) != len(estimates):
        raise ConfigurationError(
            f"{len(phis)} phis vs {len(estimates)} estimates"
        )
    ordered = data if presorted else np.sort(np.asarray(data, dtype=np.float64))
    errors = [
        observed_epsilon(ordered, phi, est)
        for phi, est in zip(phis, estimates)
    ]
    return QuantileEvaluation(
        phis=list(phis), estimates=[float(e) for e in estimates], errors=errors
    )
