"""``describe``: a one-pass five-number-summary report.

The statistics-distillation application of Section 1.1 packaged as a
single call: stream the data once through a sketch and report count, exact
min/max, quartiles and selected tail percentiles -- the familiar
``describe()`` shape, but with bounded memory and certified rank accuracy
instead of a full sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import EmptySummaryError
from ..core.sketch import QuantileSketch

__all__ = ["Description", "describe"]

_DEFAULT_PHIS = (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


@dataclass(frozen=True)
class Description:
    """A bounded-memory distribution summary."""

    n: int
    minimum: float
    maximum: float
    quantiles: List[Tuple[float, float]]  #: (phi, value) pairs
    epsilon: float
    certified_error: float  #: a-posteriori rank bound / n
    memory_elements: int

    def value(self, phi: float) -> float:
        """The reported quantile value for fraction *phi*."""
        for p, v in self.quantiles:
            if p == phi:
                return v
        raise KeyError(f"phi={phi} was not part of this description")

    @property
    def median(self) -> float:
        return self.value(0.5)

    @property
    def iqr(self) -> float:
        """The interquartile range (p75 - p25)."""
        return self.value(0.75) - self.value(0.25)

    def __str__(self) -> str:
        lines = [
            f"n            {self.n}",
            f"min          {self.minimum:g}",
        ]
        for phi, value in self.quantiles:
            lines.append(f"p{100 * phi:<12g}{value:g}")
        lines.append(f"max          {self.maximum:g}")
        lines.append(
            f"(eps={self.epsilon:g}, certified rank error "
            f"<= {self.certified_error:.2%} of n, "
            f"memory {self.memory_elements} elements)"
        )
        return "\n".join(lines)


def describe(
    data: "np.ndarray | Iterable[Any]",
    *,
    epsilon: float = 0.005,
    phis: Sequence[float] = _DEFAULT_PHIS,
    n: Optional[int] = None,
    chunk_size: int = 1 << 16,
) -> Description:
    """Summarise *data* in one bounded-memory pass.

    *data* may be an array (sized exactly) or any iterable of chunks /
    scalars (sized by *n*, or by the sketch's default design size when
    unknown).  Quantile fractions 0 and 1 are answered exactly from the
    tracked extremes regardless of *phis*.
    """
    if isinstance(data, np.ndarray):
        if len(data) == 0:
            raise EmptySummaryError("describe() of no data")
        sketch = QuantileSketch(epsilon, n=len(data))
        for start in range(0, len(data), chunk_size):
            sketch.extend(data[start : start + chunk_size])
    else:
        sketch = QuantileSketch(epsilon, n=n)
        batch: List[Any] = []
        for item in data:
            if isinstance(item, np.ndarray):
                if batch:
                    sketch.extend(batch)
                    batch = []
                sketch.extend(item)
            else:
                batch.append(item)
                if len(batch) >= chunk_size:
                    sketch.extend(batch)
                    batch = []
        if batch:
            sketch.extend(batch)
    if len(sketch) == 0:
        raise EmptySummaryError("describe() of no data")
    ordered_phis = sorted(set(float(p) for p in phis))
    values = sketch.quantiles(ordered_phis)
    return Description(
        n=len(sketch),
        minimum=float(sketch.min()),
        maximum=float(sketch.max()),
        quantiles=[(p, float(v)) for p, v in zip(ordered_phis, values)],
        epsilon=epsilon,
        certified_error=sketch.error_bound_fraction(),
        memory_elements=sketch.memory_elements,
    )
