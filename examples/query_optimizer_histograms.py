"""Equi-depth histograms for query optimisation (Section 1.1 of the paper).

A query optimiser estimating ``SELECT ... WHERE price BETWEEN x AND y``
needs the fraction of rows the predicate selects.  Equi-depth histograms
answer that -- and their bucket boundaries are exactly the i/p-quantiles
of the column, which this library computes in one pass with a guarantee.

The demo builds a 20-bucket histogram over a skewed "price" column,
fires 1000 random range predicates at it, and compares estimated vs true
selectivity against the histogram's a-priori error bound.

Run:  python examples/query_optimizer_histograms.py
"""

from __future__ import annotations

import numpy as np

from repro.histogram import build_histogram, selectivity_experiment


def main() -> None:
    rng = np.random.default_rng(2026)
    n = 500_000
    # a lognormal price column: heavily skewed, like real money data
    prices = rng.lognormal(mean=3.5, sigma=1.2, size=n)

    epsilon = 0.002
    n_buckets = 20
    hist = build_histogram(prices, n_buckets, epsilon=epsilon)

    print(
        f"{n_buckets}-bucket equi-depth histogram over {n} rows "
        f"(boundary guarantee eps={epsilon})"
    )
    print(f"bucket depth: ~{hist.depth:.0f} rows each")
    print("boundaries (= i/20-quantiles of price):")
    for i, b in enumerate(hist.boundaries, start=1):
        print(f"  {i / n_buckets:4.2f}-quantile  ~ {b:10.2f}")

    results = selectivity_experiment(
        prices, hist, n_predicates=1000, seed=11
    )
    errors = np.array([r.absolute_error for r in results])
    bound = hist.selectivity_error_bound()

    print(f"\n1000 random range predicates:")
    print(f"  mean |selectivity error|: {errors.mean():.4f}")
    print(f"  max  |selectivity error|: {errors.max():.4f}")
    print(f"  a-priori bound:           {bound:.4f}")
    assert errors.max() <= bound

    # a concrete optimiser decision: which predicate is more selective?
    cheap = results[0]
    print(
        f"\nexample predicate price in [{cheap.low:.1f}, {cheap.high:.1f}]:"
        f"\n  estimated selectivity {cheap.estimated:.3f}"
        f" vs true {cheap.true:.3f}"
    )


if __name__ == "__main__":
    main()
