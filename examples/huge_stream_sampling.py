"""Sampling for huge datasets: memory independent of N (Section 5).

Past a threshold dataset size, it is cheaper to Bernoulli-sample the
stream and run the deterministic algorithm on the sample -- the guarantee
becomes probabilistic (confidence 1 - delta) but the memory stops growing
with N entirely.  ``QuantileSketch`` makes that decision automatically
when you pass ``delta``.

Run:  python examples/huge_stream_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantileSketch
from repro.core.sampling import sampling_threshold


def main() -> None:
    epsilon, delta = 0.01, 1e-4

    threshold = sampling_threshold(epsilon, delta)
    print(
        f"for eps={epsilon} at {100 * (1 - delta):.2f}% confidence, "
        f"sampling pays off above N ~ {threshold:.2e}\n"
    )

    print(f"{'N':>12}  {'mode':<10} {'memory (elements)':>18}")
    for n in (10**5, 10**6, 10**7, 10**8, 10**9):
        sk = QuantileSketch(epsilon=epsilon, n=n, delta=delta)
        mode = "sampling" if sk.uses_sampling else "direct"
        print(f"{n:>12}  {mode:<10} {sk.memory_elements:>18}")

    # actually run one at N = 20M (the direct algorithm would need more
    # memory; the sampled one keeps its fixed footprint)
    n = 20_000_000
    sketch = QuantileSketch(epsilon=epsilon, n=n, delta=delta, seed=3)
    print(
        f"\nstreaming n={n} elements through a "
        f"{'sampling' if sketch.uses_sampling else 'direct'} sketch of "
        f"{sketch.memory_elements} elements..."
    )
    rng = np.random.default_rng(0)
    # stream in chunks; values are a shuffled permutation so rank error is
    # directly readable from the answer
    perm = rng.permutation(n)
    for start in range(0, n, 1 << 21):
        sketch.extend(perm[start : start + (1 << 21)].astype(np.float64))

    for phi in (0.1, 0.5, 0.9):
        got = sketch.query(phi)
        target = int(np.ceil(phi * n))
        err = abs(int(got) + 1 - target) / n
        print(
            f"  phi={phi:.1f}: estimate rank {int(got) + 1:>10} "
            f"(target {target:>10}), error {err:.6f} <= eps={epsilon}"
        )
    print(
        f"\n(with probability >= {1 - delta:.4f} all answers are within "
        f"eps; memory never depended on N)"
    )


if __name__ == "__main__":
    main()
