"""Quickstart: approximate quantiles in one pass with limited memory.

The 60-second tour of the library: build a sketch with an explicit
accuracy target, stream data through it once, and read off as many
quantiles as you like -- with a certified bound on how far each answer's
rank can be from the truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import QuantileSketch, approximate_quantiles


def main() -> None:
    n = 1_000_000
    epsilon = 0.001  # each answer's rank is within 0.1% of target

    # Any one-pass source works; here, a shuffled permutation of 0..n-1 so
    # we can *see* the rank error directly (the value IS its rank - 1).
    rng = np.random.default_rng(7)
    data = rng.permutation(n).astype(np.float64)

    sketch = QuantileSketch(epsilon=epsilon, n=n)
    print(f"sketch sized for eps={epsilon}, n={n}:")
    print(f"  plan: {sketch.plan}")
    print(
        f"  memory: {sketch.memory_elements} elements "
        f"({sketch.memory_elements / n:.4%} of the data)\n"
    )

    # One pass, in chunks, like reading a table.
    for start in range(0, n, 1 << 17):
        sketch.extend(data[start : start + (1 << 17)])

    # Any number of quantiles from the same summary (Section 4.7 of the
    # paper: multiple quantiles cost nothing extra).
    phis = [0.01, 0.25, 0.50, 0.75, 0.99]
    answers = sketch.quantiles(phis)

    print("phi     estimate     true rank target    |rank error|/n")
    for phi, value in zip(phis, answers):
        target = int(np.ceil(phi * n))
        err = abs(int(value) + 1 - target) / n
        print(
            f"{phi:4.2f}  {int(value):>10}  {target:>16}    {err:.6f}"
        )

    print(f"\ncertified error bound: {sketch.error_bound_fraction():.6f}")
    print("(every |rank error|/n above is <= the certified bound)")

    # For small datasets there's a one-shot helper:
    median = approximate_quantiles([3.0, 1.0, 4.0, 1.0, 5.0], [0.5], 0.2)[0]
    print(f"\none-shot median of [3,1,4,1,5]: {median}")


if __name__ == "__main__":
    main()
