"""Parallel quantile computation (Section 4.9 of the paper).

The new algorithm parallelises naturally: partition the stream among P
workers, run an independent summary on each, and feed all the workers'
final buffers into one OUTPUT.  This demo simulates an 8-worker MPP
configuration and also shows sketch *merging* -- the same dataflow
expressed through the public ``QuantileSketch.merge`` API, e.g. for
summaries built independently on different machines or days.

Run:  python examples/parallel_quantiles.py
"""

from __future__ import annotations

import numpy as np

from repro import ParallelQuantileEngine, QuantileSketch
from repro.core.parameters import optimal_parameters


def main() -> None:
    n, epsilon, workers = 2_000_000, 0.005, 8
    rng = np.random.default_rng(14)
    data = rng.permutation(n).astype(np.float64)

    plan = optimal_parameters(epsilon, n, policy="new")
    engine = ParallelQuantileEngine(workers, plan.b, plan.k)
    print(
        f"{workers} workers, each with b={plan.b}, k={plan.k} "
        f"({plan.memory} elements/worker)"
    )

    # dynamic partitioning: contiguous blocks round-robin to workers
    for start in range(0, n, 1 << 18):
        engine.dispatch(data[start : start + (1 << 18)])

    print("\ncombined answers (final OUTPUT over all root buffers):")
    for phi in (0.05, 0.5, 0.95):
        got = engine.query(phi)
        target = int(np.ceil(phi * n))
        err = abs(int(got) + 1 - target) / n
        print(
            f"  phi={phi:.2f}: rank error {err:.6f} "
            f"(certified bound {engine.error_bound() / n:.6f})"
        )

    # the same idea through sketch merging: three "sites" summarise their
    # own shards, then the summaries travel and merge
    shards = np.array_split(data, 3)
    sketches = []
    for shard in shards:
        sk = QuantileSketch(epsilon=epsilon, n=n)
        sk.extend(shard)
        sketches.append(sk)
    merged = sketches[0].merge(sketches[1]).merge(sketches[2])
    got = merged.median()
    err = abs(int(got) + 1 - n // 2) / n
    print(
        f"\nthree-site merge: median rank error {err:.6f} over "
        f"{len(merged)} elements "
        f"(certified bound {merged.error_bound_fraction():.6f})"
    )


if __name__ == "__main__":
    main()
