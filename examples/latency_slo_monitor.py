"""Streaming latency percentiles for SLO monitoring.

A service owner wants live p50/p95/p99 latency with *known* accuracy and
bounded memory -- without knowing in advance how many requests a day will
bring. The adaptive sketch delivers exactly that, and the inverse query
(`cdf`) answers the SLO question directly: *what fraction of requests beat
the 250 ms objective?*

The simulated service degrades midway through the day (a dependency slows
down), and the monitor's tail percentiles catch it while the median barely
moves -- the reason SLOs are stated in percentiles in the first place.

Run:  python examples/latency_slo_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaptiveQuantileSketch

SLO_MS = 250.0


def simulate_hour(rng: np.random.Generator, hour: int) -> np.ndarray:
    """Request latencies for one hour: lognormal body + slow tail.

    From hour 6 on, a degraded dependency adds a heavy second mode.
    """
    n = int(rng.integers(20_000, 60_000))
    base = rng.lognormal(mean=3.6, sigma=0.35, size=n)  # ~37 ms median
    if hour >= 6:
        slow = rng.random(n) < 0.08  # 8% of requests hit the slow path
        base[slow] += rng.lognormal(mean=5.8, sigma=0.4, size=int(slow.sum()))
    return base


def main() -> None:
    rng = np.random.default_rng(404)
    monitor = AdaptiveQuantileSketch(epsilon=0.005)

    print(
        f"{'hour':>4} {'requests':>10} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'<= {:.0f}ms'.format(SLO_MS):>10}  status"
    )
    for hour in range(12):
        monitor.extend(simulate_hour(rng, hour))
        p50, p95, p99 = monitor.quantiles([0.5, 0.95, 0.99])
        # cumulative SLO attainment straight from the inverse query: the
        # fraction of all requests so far at or under the objective
        attain = monitor.cdf(SLO_MS)
        status = "OK" if p99 <= SLO_MS else "P99 SLO BREACH"
        print(
            f"{hour:>4} {len(monitor):>10} {p50:>8.1f} {p95:>8.1f} "
            f"{p99:>8.1f} {attain:>9.1%}  {status}"
        )

    print(
        f"\nfinal state: {monitor.n_stages} stages, "
        f"{monitor.memory_elements} resident elements for "
        f"{len(monitor)} requests "
        f"({monitor.memory_elements / len(monitor):.3%}), "
        f"certified rank accuracy "
        f"{monitor.error_bound_fraction():.4%} of n"
    )


if __name__ == "__main__":
    main()
