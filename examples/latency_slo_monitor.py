"""Streaming latency percentiles for SLO monitoring.

A service owner wants live p50/p95/p99 latency with *known* accuracy and
bounded memory -- without knowing in advance how many requests a day will
bring. The adaptive sketch delivers exactly that, and the inverse query
(`cdf`) answers the SLO question directly: *what fraction of requests beat
the 250 ms objective?*

The simulated service degrades midway through the day (a dependency slows
down), and the monitor's tail percentiles catch it while the median barely
moves -- the reason SLOs are stated in percentiles in the first place.

Two modes:

* default -- in-process `AdaptiveQuantileSketch`, exactly as before;
* ``--live`` -- the same monitoring loop reporting into a live
  `repro.service` server over TCP (started in-process here, but
  ``--connect HOST:PORT`` points it at a real one, e.g. from
  ``python -m repro serve``).  Each hour's latencies are one batched
  ingest; percentiles and SLO attainment come back from QUERY/CDF with
  the same certified bound, and survive server restarts when the server
  runs with ``--data-dir``.

Run:  python examples/latency_slo_monitor.py [--live | --connect H:P]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AdaptiveQuantileSketch

SLO_MS = 250.0
METRIC = "checkout/latency_ms"


def simulate_hour(rng: np.random.Generator, hour: int) -> np.ndarray:
    """Request latencies for one hour: lognormal body + slow tail.

    From hour 6 on, a degraded dependency adds a heavy second mode.
    """
    n = int(rng.integers(20_000, 60_000))
    base = rng.lognormal(mean=3.6, sigma=0.35, size=n)  # ~37 ms median
    if hour >= 6:
        slow = rng.random(n) < 0.08  # 8% of requests hit the slow path
        base[slow] += rng.lognormal(mean=5.8, sigma=0.4, size=int(slow.sum()))
    return base


def live_monitor(host: str, port: int) -> None:
    """The same monitoring loop, but the sketch lives in a server."""
    from repro.service import QuantileClient

    rng = np.random.default_rng(404)
    with QuantileClient(host, port) as client:
        client.create(METRIC, kind="adaptive", epsilon=0.005)
        print(
            f"{'hour':>4} {'requests':>10} {'p50':>8} {'p95':>8} "
            f"{'p99':>8} {'<= {:.0f}ms'.format(SLO_MS):>10}  status"
        )
        for hour in range(12):
            client.ingest(METRIC, simulate_hour(rng, hour))
            (p50, p95, p99), bound, n = client.query(
                METRIC, [0.5, 0.95, 0.99]
            )
            attain = client.cdf(METRIC, SLO_MS)["fraction"]
            status = "OK" if p99 <= SLO_MS else "P99 SLO BREACH"
            print(
                f"{hour:>4} {n:>10} {p50:>8.1f} {p95:>8.1f} "
                f"{p99:>8.1f} {attain:>9.1%}  {status}"
            )
        stats = client.stats()
        entry = client.list_metrics()[0]
        print(
            f"\nserver state: {entry['memory_elements']} resident "
            f"elements for {entry['n']} requests, "
            f"{stats['ingest']['batches']} batches ingested; server-side "
            f"query latency p95 = "
            f"{(stats['queries']['latency_ms'] or {}).get('p95', 0)} ms"
        )


def run_live(connect: "str | None") -> None:
    if connect:
        host, _, port = connect.rpartition(":")
        live_monitor(host or "127.0.0.1", int(port))
        return
    from repro.service import ServerThread

    with ServerThread(n_shards=2, snapshot_interval_s=None) as server:
        print(f"(started in-process server on 127.0.0.1:{server.port})")
        live_monitor("127.0.0.1", server.port)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--live", action="store_true",
        help="report into a repro.service server instead of in-process",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="use a running server (implies --live)",
    )
    args = parser.parse_args()
    if args.live or args.connect:
        run_live(args.connect)
        return

    rng = np.random.default_rng(404)
    monitor = AdaptiveQuantileSketch(epsilon=0.005)

    print(
        f"{'hour':>4} {'requests':>10} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'<= {:.0f}ms'.format(SLO_MS):>10}  status"
    )
    for hour in range(12):
        monitor.extend(simulate_hour(rng, hour))
        p50, p95, p99 = monitor.quantiles([0.5, 0.95, 0.99])
        # cumulative SLO attainment straight from the inverse query: the
        # fraction of all requests so far at or under the objective
        attain = monitor.cdf(SLO_MS)
        status = "OK" if p99 <= SLO_MS else "P99 SLO BREACH"
        print(
            f"{hour:>4} {len(monitor):>10} {p50:>8.1f} {p95:>8.1f} "
            f"{p99:>8.1f} {attain:>9.1%}  {status}"
        )

    print(
        f"\nfinal state: {monitor.n_stages} stages, "
        f"{monitor.memory_elements} resident elements for "
        f"{len(monitor)} requests "
        f"({monitor.memory_elements / len(monitor):.3%}), "
        f"certified rank accuracy "
        f"{monitor.error_bound_fraction():.4%} of n"
    )


if __name__ == "__main__":
    main()
