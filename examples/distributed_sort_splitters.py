"""Value-range partitioning for distributed sorting (Section 1.1).

Shared-nothing parallel sorts (DeWitt et al.) route each element to the
node owning its value range; the ranges come from *splitters* -- the
i/p-quantiles of the data.  Bad splitters don't break the sort, they
unbalance it: the job finishes when the most-loaded node does.

This demo computes splitters in one bounded-memory pass, simulates a
16-node sort, and contrasts the result with a deliberately bad splitter
vector to show what imbalance costs.

Run:  python examples/distributed_sort_splitters.py
"""

from __future__ import annotations

import numpy as np

from repro.partitioning import compute_splitters, simulate_parallel_sort


def describe(label: str, result) -> None:
    report = result.report
    print(f"{label}:")
    print(f"  correct sort:        {result.correct}")
    print(
        f"  partition sizes:     min {report.min_size}, "
        f"max {report.max_size} (ideal {report.ideal:.0f})"
    )
    print(f"  imbalance:           {report.imbalance:.4%} of N")
    print(f"  skew (max/ideal):    {report.skew:.3f}")
    print(f"  speedup vs 1 node:   {result.speedup:.1f}x")
    print(
        f"  completion spread:   {result.completion_spread:,.0f}"
        " model comparisons\n"
    )


def main() -> None:
    rng = np.random.default_rng(99)
    n, nodes, epsilon = 1_000_000, 16, 0.002
    # a clumped distribution: three overlapping normal clusters
    data = np.concatenate(
        [
            rng.normal(0, 1, n // 2),
            rng.normal(4, 0.5, n // 4),
            rng.normal(-3, 2, n - n // 2 - n // 4),
        ]
    )

    print(
        f"sorting {n} elements on {nodes} simulated nodes "
        f"(splitter guarantee eps={epsilon})\n"
    )

    splitters = compute_splitters(data, nodes, epsilon=epsilon)
    good = simulate_parallel_sort(data, nodes, splitters=splitters)
    describe("approximate-quantile splitters (one bounded-memory pass)", good)

    # naive splitters: equal-width slices of the value range -- the thing
    # people reach for when they don't have quantiles
    lo, hi = float(data.min()), float(data.max())
    naive = list(np.linspace(lo, hi, nodes + 1)[1:-1])
    bad = simulate_parallel_sort(data, nodes, splitters=naive)
    describe("equal-width splitters (no quantiles)", bad)

    assert good.report.imbalance <= 2 * epsilon + 1e-9
    print(
        "quantile splitters keep every partition within "
        f"2*eps = {2 * epsilon:.1%} of ideal; equal-width splitters "
        f"left one node with {bad.report.skew:.1f}x the ideal load."
    )


if __name__ == "__main__":
    main()
