"""SQL QUANTILE aggregates over GROUP BY -- the Section 7 scenario.

The paper closes by imagining ``SELECT QUANTILE(0.35, col1),
QUANTILE(0.50, col1), ...`` in a real RDBMS, noting that multiple
quantiles on one column need "some ingenuity" and that GROUP BY needs
memory-bounded aggregates.  The miniature engine in ``repro.engine``
implements exactly that: per-group MRL sketches, shared across all
quantiles of the same column, in one pass over a (possibly disk-resident)
table.

Run:  python examples/sql_groupby_quantiles.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.engine import StoredTable, Table, execute_sql, save_table


def build_trades(n: int = 300_000) -> Table:
    rng = np.random.default_rng(5)
    symbols = ["IBM", "MSFT", "ORCL", "SUNW", "DEC"]
    weights = np.array([0.35, 0.25, 0.2, 0.15, 0.05])
    symbol = [symbols[i] for i in rng.choice(5, size=n, p=weights)]
    # price level differs per symbol; latency is heavy-tailed
    base = {"IBM": 105, "MSFT": 88, "ORCL": 34, "SUNW": 41, "DEC": 23}
    price = np.array([base[s] for s in symbol]) * rng.lognormal(0, 0.08, n)
    latency_ms = rng.gamma(2.0, 3.0, n)
    return Table.from_dict(
        "trades",
        {"symbol": symbol, "price": price, "latency_ms": latency_ms},
    )


def main() -> None:
    trades = build_trades()

    # persist to the paged on-disk format and query it from there --
    # single forward scan, page at a time
    with tempfile.TemporaryDirectory() as tmp:
        directory = os.path.join(tmp, "trades")
        save_table(trades, directory)
        stored = StoredTable(directory)

        sql = (
            "SELECT QUANTILE(0.5, price, 0.005) AS median_price,"
            "       QUANTILE(0.99, latency_ms, 0.005) AS p99_latency,"
            "       COUNT(*), AVG(price)"
            " FROM trades"
            " WHERE price > 20"
            " GROUP BY symbol"
        )
        print("executing against the disk-resident table:\n  " + sql + "\n")
        result = execute_sql(sql, {"trades": stored})

        header = (
            f"{'symbol':<8}{'rows':>9}{'median price':>14}"
            f"{'p99 latency':>13}{'avg price':>11}"
        )
        print(header)
        print("-" * len(header))
        for row in result.sorted_rows():
            print(
                f"{row['symbol']:<8}{row['count']:>9}"
                f"{row['median_price']:>14.2f}"
                f"{row['p99_latency']:>13.2f}"
                f"{row['avg_price']:>11.2f}"
            )

        print(
            f"\nrows scanned (one pass): {result.n_rows_scanned}"
            f"\nsketch memory across all groups: "
            f"{result.sketch_memory_elements} elements"
        )

        # verify one group against the exact answer
        mask = np.array([s == "IBM" for s in trades.column("symbol")])
        prices = np.asarray(trades.column("price"))[mask]
        prices = prices[prices > 20]
        exact = float(np.sort(prices)[int(np.ceil(0.5 * len(prices))) - 1])
        got = next(
            r["median_price"] for r in result.rows if r["symbol"] == "IBM"
        )
        print(
            f"\nIBM median check: engine {got:.2f} vs exact {exact:.2f} "
            f"(rank guarantee eps=0.005)"
        )


if __name__ == "__main__":
    main()
