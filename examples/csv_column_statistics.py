"""End to end from a CSV file: catalog, statistics, histograms, SQL.

The workflow a database's ANALYZE command performs, driven entirely
through this library's public surface:

1. load a CSV into the engine and persist it to the paged disk format
   via a :class:`~repro.engine.Catalog`;
2. build per-column statistics (describe + equi-depth histogram + the
   compressed histogram for the skewed column) in single passes;
3. answer optimizer-style selectivity questions and run SQL -- including
   a plain projection and a HAVING-filtered aggregation -- against the
   stored table.

Run:  python examples/csv_column_statistics.py
"""

from __future__ import annotations

import csv
import os
import tempfile

import numpy as np

from repro.analysis import describe
from repro.engine import Catalog, load_csv
from repro.histogram import build_compressed_histogram, build_histogram


def make_csv(path: str, n: int = 120_000) -> None:
    """Synthesise an 'orders' CSV: a skewed amount column with point
    masses (shipping fees) over a lognormal tail, and a category key."""
    rng = np.random.default_rng(77)
    fee = rng.choice([4.99, 9.99, 0.0], size=n, p=[0.35, 0.15, 0.5])
    amount = np.where(
        fee > 0, fee, np.round(rng.lognormal(3.2, 0.9, n), 2)
    )
    categories = np.array(["books", "garden", "toys", "food"])[
        rng.integers(0, 4, n)
    ]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["category", "amount"])
        for c, a in zip(categories, amount):
            writer.writerow([c, f"{a:.2f}"])


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "orders.csv")
        make_csv(csv_path)

        # 1. ingest + persist
        db = Catalog(os.path.join(tmp, "warehouse"))
        db.register(load_csv(csv_path))
        db.save("orders")
        print(f"catalog: {db.names()} (paged on disk)\n")

        # 2. column statistics in one pass each
        amounts = np.asarray(db.table("orders").load().column("amount"))
        print("describe(amount):")
        print(describe(amounts, epsilon=0.005))

        hist = build_histogram(amounts, 20, epsilon=0.002)
        compressed = build_compressed_histogram(amounts, 20, epsilon=0.002)
        print(
            f"\ncompressed histogram singletons (exact): "
            f"{[(v, c) for v, c in compressed.singletons]}"
        )

        # 3. optimizer-style question: selectivity of amount <= 9.99
        true = float((amounts <= 9.99).mean())
        print(
            f"\nselectivity(amount <= 9.99): true {true:.4f}, "
            f"equi-depth {hist.selectivity(amounts.min(), 9.99):.4f}, "
            f"compressed {compressed.selectivity(amounts.min(), 9.99):.4f}"
        )

        # 4. SQL over the stored table
        print("\nper-category p90 (HAVING count > 25000):")
        result = db.sql(
            "SELECT QUANTILE(0.9, amount, 0.005) AS p90, COUNT(*) AS n"
            " FROM orders GROUP BY category"
            " HAVING n > 25000 ORDER BY p90 DESC"
        )
        for row in result.rows:
            print(
                f"  {row['category']:<8} p90={row['p90']:>8.2f} "
                f"n={row['n']}"
            )

        print("\nfirst rows over 400.00 (projection + ORDER BY + LIMIT):")
        result = db.sql(
            "SELECT category, amount FROM orders WHERE amount > 400"
            " ORDER BY amount DESC LIMIT 3"
        )
        for row in result.rows:
            print(f"  {row['category']:<8} {row['amount']:.2f}")


if __name__ == "__main__":
    main()
