"""A checkpointed ETL pipeline: serialisation + unknown stream length.

Two production realities the paper's future work points at, handled by
this library's extensions:

1. **You don't know N.**  Data arrives in daily batches of unpredictable
   size; ``AdaptiveQuantileSketch`` keeps the epsilon guarantee anyway.
2. **Jobs restart.**  The nightly job persists the deterministic sketch
   with ``repro.core.dumps`` and resumes exactly where it left off --
   answers and certified bounds are bit-identical to an uninterrupted run.

Run:  python examples/checkpointed_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaptiveQuantileSketch
from repro.core import QuantileFramework, dumps, loads


def unknown_length_ingest() -> None:
    print("--- scenario 1: stream of unknown length -------------------")
    rng = np.random.default_rng(1)
    sketch = AdaptiveQuantileSketch(epsilon=0.01)

    # "days" of wildly varying batch sizes; nobody knows the total
    total = 0
    values = []
    for day in range(12):
        batch = rng.lognormal(5, 0.7, int(rng.integers(1_000, 80_000)))
        values.append(batch)
        sketch.extend(batch)
        total += len(batch)
    all_values = np.sort(np.concatenate(values))

    p50, p95 = sketch.quantiles([0.5, 0.95])
    for label, phi, got in (("p50", 0.5, p50), ("p95", 0.95, p95)):
        rank = int(np.searchsorted(all_values, got, side="left")) + 1
        target = int(np.ceil(phi * total))
        print(
            f"  {label}: {got:9.1f}  rank error "
            f"{abs(rank - target) / total:.6f} over {total} rows "
            f"seen across {sketch.n_stages} stages"
        )
    print(
        f"  certified bound: {sketch.error_bound_fraction():.6f} "
        f"(target eps = 0.01), memory {sketch.memory_elements} elements"
    )


def checkpoint_restart() -> None:
    print("\n--- scenario 2: checkpoint and restart ----------------------")
    rng = np.random.default_rng(2)
    n = 400_000
    data = rng.permutation(n).astype(np.float64)

    # the job processes 60%, checkpoints, "crashes", resumes
    fw = QuantileFramework.from_accuracy(0.005, n)
    fw.extend(data[: int(0.6 * n)])
    checkpoint = dumps(fw)
    print(f"  checkpoint written: {len(checkpoint)} bytes")

    resumed = loads(checkpoint)
    resumed.extend(data[int(0.6 * n) :])

    # reference: the uninterrupted run
    fw.extend(data[int(0.6 * n) :])
    phis = [0.25, 0.5, 0.75]
    assert resumed.quantiles(phis) == fw.quantiles(phis)
    assert resumed.error_bound() == fw.error_bound()
    print(
        "  resumed run matches the uninterrupted run exactly: "
        f"median={resumed.query(0.5):.0f}, "
        f"bound={resumed.error_bound() / n:.6f}"
    )


if __name__ == "__main__":
    unknown_length_ingest()
    checkpoint_restart()
