"""Section 4.9: the parallel version across degrees of parallelism.

Partitions one stream across P workers (P = 1 .. 64), combines their root
buffers under a single OUTPUT, and reports accuracy, per-worker memory
and total memory.  For P > 100 the paper proposes a two-stage
recombination; P = 64 with ``combine_fanin=8`` exercises that path.

Expected shape: accuracy stays within the guarantee at every P (the
dataflow is what matters, not the parallelism), and aggregate memory
scales linearly with P while per-worker memory is constant -- the
"scales linearly ... except for the final phase" claim.
"""

from __future__ import annotations

import math
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.core.parallel import ParallelQuantileEngine
from repro.core.parameters import optimal_parameters
from repro.streams import random_permutation_stream

EPSILON = 0.005
N = 10**6
WORKER_COUNTS = [1, 2, 4, 8, 24, 64]


def build_parallel() -> str:
    plan = optimal_parameters(EPSILON, N, policy="new")
    rows = []
    errors = {}
    for p in WORKER_COUNTS:
        engine = ParallelQuantileEngine(
            p, plan.b, plan.k, combine_fanin=8 if p > 32 else None
        )
        stream = random_permutation_stream(N, seed=13)
        for chunk in stream.chunks(1 << 18):
            engine.dispatch(chunk)
        worst = 0.0
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9):
            got = engine.query(phi)
            target = min(max(math.ceil(phi * N), 1), N)
            worst = max(worst, abs((got + 1) - target) / N)
        errors[p] = worst
        rows.append(
            [
                p,
                format_memory(plan.memory),
                format_memory(engine.memory_elements),
                f"{worst:.6f}",
                f"{engine.error_bound() / N:.6f}",
            ]
        )
    table = format_table(
        [
            "workers",
            "memory/worker",
            "total memory",
            "max observed eps",
            "certified bound / N",
        ],
        rows,
        title=f"Parallel quantiles (eps={EPSILON}, N={N})",
    )

    # -- shape checks ---------------------------------------------------------
    # The per-worker configuration was sized for the whole stream, so the
    # combined answer keeps the full-stream guarantee at every P.
    for p, err in errors.items():
        assert err <= EPSILON, (p, err)
    return table


def test_parallel(benchmark):
    output = benchmark.pedantic(build_parallel, rounds=1, iterations=1)
    emit("parallel_scaling", output)


if __name__ == "__main__":
    print(build_parallel())
