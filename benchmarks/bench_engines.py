"""Engine matrix: accuracy / space / speed for paper vs KLL vs Frugal.

The pluggable-engine contract is quantified on one stream shape
(integer-scale values, the regime all three engines support) at three
fleet sizes, and written to ``BENCH_engines.json``:

* ``single_metric`` -- one sketch per engine fed the whole stream:
  ingest rate, resident bytes, observed rank error at each phi, and the
  certified bound where the engine offers one.  Two gates live here:
  KLL at eps=0.01 must fit in no more memory than the paper sketch at
  the same eps, and every observed error must sit inside its certified
  bound.
* ``bank_scale`` -- the fleet workload that motivated the Frugal
  engine: *n_metrics* independent streams ingested through a bank in
  interleaved chunks of ~2 elements per metric (the shape a server
  shard sees when thousands of clients each send small batches).  The
  paper ``SketchBank`` pays a per-run partition cost per touched
  sketch; the ``FrugalBank`` kernel is one branchless vectorised pass
  over flat arrays.  Gates at 100k metrics: Frugal ingest >= 5x the
  paper bank, and <= 64 resident bytes per metric.

Run directly::

    PYTHONPATH=src python benchmarks/bench_engines.py            # full
    PYTHONPATH=src python benchmarks/bench_engines.py --quick    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.bank import SketchBank
from repro.core.framework import QuantileFramework
from repro.core.frugal import DEFAULT_BANK_PHIS, FrugalBank, FrugalSketch
from repro.core.kll import KLLSketch
from repro.core.parameters import optimal_parameters

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_engines.json")

EPSILON = 0.01
PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]

# bank-scale gates (the 100k-metric row)
TARGET_FRUGAL_SPEEDUP = 5.0
TARGET_FRUGAL_BYTES_PER_METRIC = 64


def _stream(n: int, seed: int = 0) -> np.ndarray:
    """Integer-scale values: the regime every engine handles."""
    return np.random.default_rng(seed).integers(0, n, n).astype(np.float64)


def _rank_errors(data: np.ndarray, sketch) -> Dict[str, float]:
    ordered = np.sort(data)
    out = {}
    for phi in PHIS:
        est = float(sketch.quantile(phi))
        rank = float(np.searchsorted(ordered, est, side="right"))
        out[str(phi)] = round(abs(rank - phi * data.size), 1)
    return out


def _build_single(engine: str, n: int):
    if engine == "paper":
        plan = optimal_parameters(EPSILON, n)
        return QuantileFramework(plan.b, plan.k)
    if engine == "kll":
        return KLLSketch(eps=EPSILON, seed=0)
    return FrugalSketch(phis=tuple(PHIS), seed=0)


def _memory_bytes(sketch) -> int:
    return sketch.memory_elements * 8  # float64-equivalent summary words


def bench_single(engine: str, n: int, rounds: int) -> Dict[str, object]:
    data = _stream(n)
    best = float("inf")
    for _ in range(rounds):
        sketch = _build_single(engine, n)
        t0 = time.perf_counter()
        sketch.extend(data)
        best = min(best, time.perf_counter() - t0)
    bound = sketch.error_bound()
    errors = _rank_errors(data, sketch)
    return {
        "elements": n,
        "elements_per_s": int(n / best),
        "memory_bytes": _memory_bytes(sketch),
        "certified_bound_ranks": None if bound == float("inf")
        else round(bound, 1),
        "observed_error_ranks": errors,
        "max_observed_error_ranks": max(errors.values()),
    }


def _bank_workload(n_metrics: int, total: int, seed: int = 1):
    """Interleaved fleet traffic in ~2-element-per-metric chunks."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, n_metrics, total)
    values = rng.integers(0, 100_000, total).astype(np.float64)
    chunk = max(2 * n_metrics, 64)
    return [
        (ids[i:i + chunk], values[i:i + chunk])
        for i in range(0, total, chunk)
    ]


def bench_bank(
    engine: str, n_metrics: int, total: int, rounds: int
) -> Dict[str, object]:
    chunks = _bank_workload(n_metrics, total)
    best = float("inf")
    for _ in range(rounds):
        if engine == "paper":
            bank = SketchBank(eps=EPSILON, n_sketches=n_metrics)
        else:
            bank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
        t0 = time.perf_counter()
        for ids, values in chunks:
            bank.extend(ids, values)
        best = min(best, time.perf_counter() - t0)
    if engine == "paper":
        memory = bank.memory_elements * 8
    else:
        memory = bank.memory_bytes
    return {
        "metrics": n_metrics,
        "elements": total,
        "chunk_elements": max(2 * n_metrics, 64),
        "elements_per_s": int(total / best),
        "memory_bytes": memory,
        "bytes_per_metric": round(memory / n_metrics, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced totals for the CI gate job -- the 100k-metric "
        "row keeps its full fleet width so the >=5x gate is honest",
    )
    parser.add_argument("--out", default=OUT_PATH, help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        single_n, rounds = 200_000, 2
        bank_rows = [(100, 200_000), (100_000, 2_000_000)]
    else:
        single_n, rounds = 1_000_000, 3
        bank_rows = [(100, 1_000_000), (100_000, 4_000_000)]

    single = {
        engine: bench_single(engine, single_n, rounds)
        for engine in ("paper", "kll", "frugal")
    }

    banks: Dict[str, Dict[str, object]] = {}
    for n_metrics, total in bank_rows:
        paper = bench_bank("paper", n_metrics, total, rounds)
        frugal = bench_bank("frugal", n_metrics, total, rounds)
        banks[str(n_metrics)] = {
            "paper": paper,
            "frugal": frugal,
            "frugal_speedup": round(
                frugal["elements_per_s"] / paper["elements_per_s"], 2
            ),
        }

    big = banks[str(bank_rows[-1][0])]
    gates = {
        "kll_memory_bytes": single["kll"]["memory_bytes"],
        "paper_memory_bytes": single["paper"]["memory_bytes"],
        "kll_memory_le_paper":
            single["kll"]["memory_bytes"] <= single["paper"]["memory_bytes"],
        "observed_error_le_certified_bound": all(
            single[e]["max_observed_error_ranks"]
            <= single[e]["certified_bound_ranks"]
            for e in ("paper", "kll")
        ),
        "frugal_speedup_at_100k": big["frugal_speedup"],
        "target_frugal_speedup": TARGET_FRUGAL_SPEEDUP,
        "frugal_bytes_per_metric": big["frugal"]["bytes_per_metric"],
        "target_frugal_bytes_per_metric": TARGET_FRUGAL_BYTES_PER_METRIC,
    }

    report = {
        "meta": {
            "benchmark": "engines",
            "quick": args.quick,
            "eps": EPSILON,
            "phis": PHIS,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "single_metric": single,
        "bank_scale": banks,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")

    for engine, row in single.items():
        bound = row["certified_bound_ranks"]
        print(
            f"single {engine:>6}: {row['elements_per_s']:>12,} el/s, "
            f"{row['memory_bytes']:>8,} B, worst observed error "
            f"{row['max_observed_error_ranks']:,} ranks"
            + (f" (certified {bound:,})" if bound else " (uncertified)")
        )
    for n_metrics, _ in bank_rows:
        row = banks[str(n_metrics)]
        print(
            f"bank {n_metrics:>7,} metrics: paper "
            f"{row['paper']['elements_per_s']:>12,} el/s, frugal "
            f"{row['frugal']['elements_per_s']:>12,} el/s "
            f"({row['frugal_speedup']}x, "
            f"{row['frugal']['bytes_per_metric']} B/metric)"
        )
    print(
        f"gates: kll {gates['kll_memory_bytes']:,} B <= paper "
        f"{gates['paper_memory_bytes']:,} B: {gates['kll_memory_le_paper']}"
        f"; error <= bound: {gates['observed_error_le_certified_bound']}"
        f"; frugal speedup {gates['frugal_speedup_at_100k']}x "
        f"(target >= {TARGET_FRUGAL_SPEEDUP}x)"
        f"; {gates['frugal_bytes_per_metric']} B/metric "
        f"(target <= {TARGET_FRUGAL_BYTES_PER_METRIC})"
    )
    print(f"wrote {args.out}")

    ok = (
        gates["kll_memory_le_paper"]
        and gates["observed_error_le_certified_bound"]
        and gates["frugal_speedup_at_100k"] >= TARGET_FRUGAL_SPEEDUP
        and gates["frugal_bytes_per_metric"]
        <= TARGET_FRUGAL_BYTES_PER_METRIC
    )
    if not ok:
        print("GATE FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
