"""Figures 2-4: the collapse trees of the three policies.

Renders, with each node labelled by its weight:

* Figure 2 -- the canonical Munro-Paterson tree for b = 6 (built
  symbolically: the stipulated schedule with exactly 2^(b-1) leaves);
* Figure 3 -- the Alsabti-Ranka-Singh tree for b = 10 (from an actual
  run, which matches the canonical shape exactly);
* Figure 4 -- the new policy's tree for b = 5 (from an actual run;
  root children of weights 5, 4, 3, 2, 1).

The per-tree statistics (L, C, W, w_max) are asserted against the closed
forms of Sections 4.3-4.5.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.core import QuantileFramework
from repro.core.parameters import (
    alsabti_ranka_singh_stats,
    munro_paterson_stats,
)
from repro.core.tree import canonical_munro_paterson_tree


def _run(b: int, k: int, n_leaves: int, policy: str):
    fw = QuantileFramework(b=b, k=k, policy=policy, record_tree=True)
    fw.extend(np.arange(n_leaves * k, dtype=np.float64))
    fw.finish([0.5])
    return fw.recorder


def build_trees() -> str:
    sections = []

    mp = canonical_munro_paterson_tree(6)
    mp_stats = mp.stats()
    closed_mp = munro_paterson_stats(6)
    assert (
        mp_stats.n_leaves,
        mp_stats.n_collapses,
        mp_stats.sum_collapse_weights,
        mp_stats.w_max,
    ) == (
        closed_mp.n_leaves,
        closed_mp.n_collapses,
        closed_mp.sum_collapse_weights,
        closed_mp.w_max,
    )
    sections.append(
        "Figure 2 -- Munro-Paterson, b=6 (canonical; weights by depth)\n"
        + "\n".join(
            f"  depth {d}: {weights}"
            for d, weights in enumerate(mp.weights_by_depth())
        )
        + f"\n  stats: L={mp_stats.n_leaves} C={mp_stats.n_collapses} "
        f"W={mp_stats.sum_collapse_weights} w_max={mp_stats.w_max} "
        f"error_bound={mp_stats.error_bound}"
    )

    ars = _run(b=10, k=2, n_leaves=25, policy="alsabti-ranka-singh")
    ars_stats = ars.stats()
    closed_ars = alsabti_ranka_singh_stats(10)
    assert (
        ars_stats.n_leaves,
        ars_stats.n_collapses,
        ars_stats.sum_collapse_weights,
        ars_stats.w_max,
    ) == (
        closed_ars.n_leaves,
        closed_ars.n_collapses,
        closed_ars.sum_collapse_weights,
        closed_ars.w_max,
    )
    sections.append(
        "Figure 3 -- Alsabti-Ranka-Singh, b=10 (actual run)\n"
        + ars.render()
        + f"\n  stats: L={ars_stats.n_leaves} C={ars_stats.n_collapses} "
        f"W={ars_stats.sum_collapse_weights} w_max={ars_stats.w_max} "
        f"error_bound={ars_stats.error_bound}"
    )

    new = _run(b=5, k=2, n_leaves=15, policy="new")
    new_stats = new.stats()
    top = sorted(new.nodes[i].weight for i in new.root_children)
    assert top == [1, 2, 3, 4, 5], top
    sections.append(
        "Figure 4 -- New policy, b=5 (actual run)\n"
        + new.render()
        + f"\n  stats: L={new_stats.n_leaves} C={new_stats.n_collapses} "
        f"W={new_stats.sum_collapse_weights} w_max={new_stats.w_max} "
        f"error_bound={new_stats.error_bound}"
    )

    return "\n\n".join(sections)


def test_trees(benchmark):
    output = benchmark(build_trees)
    emit("figures_2_3_4_trees", output)


if __name__ == "__main__":
    print(build_trees())
