"""Table 3: observed error of the new algorithm (Section 6).

Runs the new algorithm at epsilon = 1e-3 computing the 15 quantiles
``q/16`` over sorted and random rank permutations of sizes 1e5, 1e6 and
1e7, and reports the observed epsilon per quantile -- the exact layout of
the paper's Table 3.

Expected shape (the paper's observation): every observed error is far
below the stipulated 1e-3, typically by an order of magnitude, on both
arrival orders and at all sizes.
"""

from __future__ import annotations

import math
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import PHIS_15, emit

from repro.analysis import format_table
from repro.core import QuantileFramework
from repro.streams import random_permutation_stream, sorted_stream

EPSILON = 1e-3
SIZES = [10**5, 10**6, 10**7]


def observed_errors(stream) -> list:
    fw = QuantileFramework.from_accuracy(EPSILON, stream.n)
    for chunk in stream.chunks(1 << 20):
        fw.extend(chunk)
    estimates = fw.quantiles(PHIS_15)
    errors = []
    for phi, value in zip(PHIS_15, estimates):
        target = min(max(math.ceil(phi * stream.n), 1), stream.n)
        errors.append(abs((value + 1) - target) / stream.n)
    return errors


def build_table3() -> str:
    columns = {}
    for n in SIZES:
        columns[("sorted", n)] = observed_errors(sorted_stream(n))
        columns[("random", n)] = observed_errors(
            random_permutation_stream(n, seed=1998)
        )
    headers = ["q"] + [
        f"{order[:4]} 1e{len(str(n)) - 1}"
        for order in ("sorted", "random")
        for n in SIZES
    ]
    rows = []
    for i, _phi in enumerate(PHIS_15):
        row = [i + 1]
        for order in ("sorted", "random"):
            for n in SIZES:
                row.append(f"{columns[(order, n)][i]:.5f}")
        rows.append(row)
    table = format_table(
        headers, rows, title="Observed epsilon (stipulated eps = 0.001)"
    )

    # -- reproduction checks ------------------------------------------------
    all_errors = [e for errs in columns.values() for e in errs]
    assert max(all_errors) <= EPSILON, "the guarantee itself failed!"
    # Section 6's point: observed error is much better than epsilon
    assert sum(all_errors) / len(all_errors) < EPSILON / 2
    return table


def test_table3(benchmark):
    table = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    emit("table3", table)


if __name__ == "__main__":
    print(build_table3())
