"""Figure 8: the dataset size above which sampling beats the direct
algorithm, for confidence 99.99% (delta = 1e-4).

For each epsilon the sampling configuration's memory is independent of N
while the direct algorithm's grows with N; their crossing point is the
threshold plotted in the paper's Figure 8.  The reproduction targets:

* a finite threshold exists for every epsilon in [1e-4, 1e-1];
* the threshold *rises* steeply as epsilon shrinks (tighter guarantees
  make sampling expensive, so direct computation stays competitive
  longer) -- the figure's characteristic upward sweep.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.core.parameters import optimal_parameters
from repro.core.sampling import optimize_alpha, sampling_threshold

DELTA = 1e-4
EPS_SWEEP = [0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0001]


def build_figure8() -> str:
    rows = []
    thresholds = {}
    for eps in EPS_SWEEP:
        threshold = sampling_threshold(eps, DELTA)
        thresholds[eps] = threshold
        sampled = optimize_alpha(eps, DELTA)
        direct_at = optimal_parameters(eps, threshold, policy="new")
        rows.append(
            [
                f"{eps:g}",
                f"{threshold:.3e}",
                format_memory(sampled.memory),
                format_memory(direct_at.memory),
                format_memory(sampled.sample_size),
            ]
        )
    table = format_table(
        [
            "eps",
            "threshold N",
            "sampling bk",
            "direct bk at threshold",
            "sample size S",
        ],
        rows,
        title=f"Threshold N above which sampling wins (delta = {DELTA})",
    )

    # -- reproduction checks ------------------------------------------------
    # EPS_SWEEP is descending in eps, so thresholds must be ascending
    ordered = [thresholds[eps] for eps in EPS_SWEEP]
    assert ordered == sorted(ordered), (
        "threshold must rise as epsilon shrinks"
    )
    # Table 1 cross-check: at eps=0.01 the crossover sits in (1e6, 1e7]
    assert 10**6 < thresholds[0.01] <= 10**7
    # at the threshold the two memories are (by construction) comparable
    for eps in (0.1, 0.01, 0.001):
        sampled = optimize_alpha(eps, DELTA).memory
        below = optimal_parameters(
            eps, max(thresholds[eps] - 1, 1), policy="new"
        ).memory
        above = optimal_parameters(
            eps, thresholds[eps] + 1, policy="new"
        ).memory
        assert below <= sampled
        assert above > sampled or above == sampled
    return table


def test_figure8(benchmark):
    output = benchmark.pedantic(build_figure8, rounds=1, iterations=1)
    emit("figure8", output)


if __name__ == "__main__":
    print(build_figure8())
