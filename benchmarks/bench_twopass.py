"""Extension bench: exact quantiles in two passes.

Section 2.1 recalls Munro & Paterson's p-pass bound (O(N^(1/p)) memory for
exact selection).  Composing the paper's one-pass sketch with a second
filtered scan realises the p=2 case with small constants; this bench
measures the peak memory of the exact computation across stream sizes and
checks it grows like ~sqrt(N) (times logs), far below N.

Expected shape: the answer is *exact* at every size; peak memory as a
fraction of N falls steadily (sub-linear growth).
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.streams import random_permutation_stream
from repro.twopass import exact_quantile_two_pass

SIZES = [10**4, 10**5, 10**6, 5 * 10**6]


def build_twopass() -> str:
    rows = []
    fractions = []
    for n in SIZES:
        stream = random_permutation_stream(n, seed=21)
        result = exact_quantile_two_pass(stream, 0.5)
        assert result.value == stream.exact_quantile(0.5)  # exactness
        fraction = result.peak_memory / n
        fractions.append(fraction)
        rows.append(
            [
                n,
                f"{result.epsilon:.5f}",
                format_memory(result.sketch_memory),
                format_memory(result.retained),
                format_memory(result.peak_memory),
                f"{fraction:.2%}",
            ]
        )
    table = format_table(
        [
            "N",
            "auto eps",
            "pass-1 sketch",
            "pass-2 retained",
            "peak memory",
            "peak / N",
        ],
        rows,
        title="Exact median in two passes (sketch bracket + filtered scan)",
    )
    # peak memory fraction shrinks as N grows (sub-linear memory)
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[-1] < 0.02
    return table


def test_twopass(benchmark):
    output = benchmark.pedantic(build_twopass, rounds=1, iterations=1)
    emit("twopass_exact", output)


if __name__ == "__main__":
    print(build_twopass())
