"""Hot-path micro/macro benchmark: ingest, collapse and query kernels.

Unlike the table/figure benches, this harness exists to leave a *machine
readable* performance trajectory: it times the single-pass ingest hot path
per policy (with the sorted-run kernels enabled and with the argsort
fallback, so every run is its own before/after comparison), the collapse
selection micro-kernels, and multi-quantile query latency, then writes
``BENCH_hotpath.json`` at the repository root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke

The flagship setting matches ``bench_throughput.py`` (eps=0.01 sized for
N=1e6, chunked extend) so numbers line up with the historical
``benchmarks/results/throughput.txt`` baseline (6.20 M elements/s for the
"new" policy on the original seed).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core import QuantileFramework, kernels
from repro.core.parameters import optimal_parameters

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_hotpath.json")

EPSILON = 0.01
SEED_BASELINE_NEW = 6.20  # M elements/s, benchmarks/results/throughput.txt
POLICIES = ("new", "munro-paterson", "alsabti-ranka-singh")


def _data(n: int) -> np.ndarray:
    return np.random.default_rng(3).permutation(n).astype(np.float64)


def _ingest_once(policy: str, data: np.ndarray, n_design: int, chunk: int):
    plan = optimal_parameters(EPSILON, n_design, policy=policy)
    fw = QuantileFramework(plan.b, plan.k, policy=policy)
    start = time.perf_counter()
    for i in range(0, len(data), chunk):
        fw.extend(data[i : i + chunk])
    elapsed = time.perf_counter() - start
    return fw, plan, elapsed


def bench_ingest(data, n_design, chunk, rounds):
    """Elements/s per policy, kernels on and (for 'new') argsort fallback."""
    out = {}
    for policy in POLICIES:
        best = min(
            _ingest_once(policy, data, n_design, chunk)[2]
            for _ in range(rounds)
        )
        plan = optimal_parameters(EPSILON, n_design, policy=policy)
        out[policy] = {
            "b": plan.b,
            "k": plan.k,
            "memory_elements": plan.b * plan.k,
            "elements_per_s": len(data) / best,
            "m_elements_per_s": round(len(data) / best / 1e6, 2),
        }
    kernels.set_enabled(False)
    try:
        best = min(
            _ingest_once("new", data, n_design, chunk)[2]
            for _ in range(rounds)
        )
    finally:
        kernels.set_enabled(True)
    out["new/argsort-fallback"] = {
        "elements_per_s": len(data) / best,
        "m_elements_per_s": round(len(data) / best / 1e6, 2),
    }
    return out


def bench_collapse_kernels(repeats=2000):
    """Microbenchmark the COLLAPSE selection strategies on typical shapes."""
    rng = np.random.default_rng(0)
    k, c = 229, 4
    runs = [np.sort(rng.random(k)) for _ in range(c)]
    uniform_w = [1] * c
    mixed_w = [1, 1, 4, 2]
    out = {}
    cases = (
        ("collapse_select_uniform", runs, uniform_w),
        ("collapse_select_mixed", runs, mixed_w),
    )
    for name, rr, ww in cases:
        weight = sum(ww)
        start = time.perf_counter()
        for _ in range(repeats):
            kernels.collapse_select_runs(rr, ww, weight, 2, k)
        out[name + "_us"] = (time.perf_counter() - start) / repeats * 1e6
        targets = np.arange(k, dtype=np.int64) * weight + 2
        start = time.perf_counter()
        for _ in range(repeats):
            kernels.weighted_select_argsort(rr, ww, targets)
        out[name + "_argsort_us"] = (
            (time.perf_counter() - start) / repeats * 1e6
        )
    for strategy in ("stable", "searchsorted"):
        start = time.perf_counter()
        for _ in range(repeats):
            kernels.merge_sorted_runs(runs, mixed_w, strategy=strategy)
        out[f"merge_runs_{strategy}_us"] = (
            (time.perf_counter() - start) / repeats * 1e6
        )
    return out


def bench_obs(data, n_design, chunk, rounds):
    """Overhead accounting for the observability layer (repro.obs).

    Disabled mode is the default, so the guards' cost cannot be measured
    against an uninstrumented build; instead it is bounded analytically:
    the measured cost of one disabled guard (a module-attribute read plus
    a branch -- exactly what every core hook site executes) times the
    number of guard executions per element, as a fraction of the measured
    per-element ingest cost.  Guards sit at buffer/chunk granularity
    (~2/k per element for NEW+COLLAPSE plus one per extend chunk), which
    is what keeps the ratio bounded by design, not by luck.  Enabled-mode
    cost is measured end to end for reference.
    """
    import timeit

    from repro.obs import hooks

    best_off = min(
        _ingest_once("new", data, n_design, chunk)[2] for _ in range(rounds)
    )
    per_element = best_off / len(data)

    reps = 200_000
    guard_s = (
        timeit.timeit(
            "if h.ENABLED:\n    pass", globals={"h": hooks}, number=reps
        )
        / reps
    )
    plan = optimal_parameters(EPSILON, n_design, policy="new")
    n_chunks = -(-len(data) // chunk)
    guards_per_element = 2.0 / plan.k + n_chunks / len(data)
    disabled_ratio = 1.0 + (guard_s * guards_per_element) / per_element

    hooks.reset()
    hooks.enable()
    try:
        best_on = min(
            _ingest_once("new", data, n_design, chunk)[2]
            for _ in range(rounds)
        )
    finally:
        hooks.reset()

    return {
        "guard_ns": round(guard_s * 1e9, 2),
        "ingest_ns_per_element": round(per_element * 1e9, 2),
        "guards_per_element": guards_per_element,
        "disabled_overhead_ratio": round(disabled_ratio, 5),
        "target_disabled_overhead_ratio": 1.02,
        "enabled_overhead_ratio": round(best_on / best_off, 3),
    }


def bench_query(data, n_design, chunk):
    fw, _, _ = _ingest_once("new", data, n_design, chunk)
    phis = [i / 10 for i in range(1, 10)]
    start = time.perf_counter()
    reps = 50
    for _ in range(reps):
        fw.quantiles(phis)
    return {
        "quantiles_9_us": (time.perf_counter() - start) / reps * 1e6,
        "error_bound": fw.error_bound(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-N smoke run for CI (validates the harness, not perf)",
    )
    parser.add_argument("--out", default=OUT_PATH, help="output JSON path")
    args = parser.parse_args(argv)

    n = 200_000 if args.quick else 1_000_000
    rounds = 1 if args.quick else 3
    chunk = 1 << 17
    data = _data(n)

    ingest = bench_ingest(data, n, chunk, rounds)
    report = {
        "meta": {
            "benchmark": "hotpath",
            "quick": args.quick,
            "eps": EPSILON,
            "n": n,
            "chunk": chunk,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "seed_baseline_new_m_elements_per_s": SEED_BASELINE_NEW,
        },
        "ingest": ingest,
        "kernels": bench_collapse_kernels(200 if args.quick else 2000),
        "query": bench_query(data, n, chunk),
        "obs": bench_obs(data, n, chunk, rounds),
        "speedup": {
            "new_vs_seed_baseline": round(
                ingest["new"]["m_elements_per_s"] / SEED_BASELINE_NEW, 2
            ),
            "new_kernels_vs_argsort_fallback": round(
                ingest["new"]["elements_per_s"]
                / ingest["new/argsort-fallback"]["elements_per_s"],
                2,
            ),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(report["ingest"], indent=2))
    print(f"speedup vs seed baseline: {report['speedup']['new_vs_seed_baseline']}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
