"""GROUP BY with quantile aggregates: the Section 7 execution scenario.

Two jobs live here:

1. :func:`build_groupby` -- the original accuracy/memory report (used by
   ``make_report.py`` and the pytest-benchmark harness): every group's
   quantiles honour the stipulated epsilon, extra quantiles per column
   are free (Section 4.7), and total sketch memory stays far below the
   data size.

2. A machine-readable throughput benchmark for the
   :class:`~repro.core.bank.SketchBank` ingest path, writing
   ``BENCH_groupby.json`` at the repository root: rows/s of the
   bank-backed executor versus a faithful replica of the pre-bank
   per-group path (per-row Python bucketing, per-group masking and
   sub-chunk copies) across group counts, plus multi-column ingest
   across column counts and the single-sketch overhead check.

Run directly::

    PYTHONPATH=src python benchmarks/bench_groupby.py            # full
    PYTHONPATH=src python benchmarks/bench_groupby.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _common import emit

from repro.analysis import format_memory, format_table
from repro.core import QuantileSketch, SketchBank
from repro.engine import Query, Table, count, median, quantile
from repro.engine.groupby import execute_group_by
from repro.engine.table import Chunk
from repro.multicolumn import MultiColumnSketcher

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_groupby.json")

EPSILON = 0.01
N = 200_000
N_GROUPS = 8
CHUNK = 1 << 16
#: the pre-bank path is O(groups x rows) per chunk; cap its input at high
#: group counts so the full benchmark finishes (rows/s is rate-based and
#: the cap is recorded in the JSON).
BASELINE_ROW_CAP = 200_000


def _table(seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    groups = [f"g{i}" for i in rng.integers(0, N_GROUPS, N)]
    values = rng.lognormal(3.0, 1.0, N)
    return Table.from_dict("metrics", {"grp": groups, "value": values})


def build_groupby() -> str:
    table = _table()
    one_q = (
        Query(table)
        .group_by("grp")
        .aggregate(quantile("value", 0.5, EPSILON), count())
        .execute()
    )
    many_q = (
        Query(table)
        .group_by("grp")
        .aggregate(
            quantile("value", 0.25, EPSILON),
            quantile("value", 0.5, EPSILON),
            quantile("value", 0.75, EPSILON),
            quantile("value", 0.95, EPSILON),
            quantile("value", 0.99, EPSILON),
            count(),
        )
        .execute()
    )

    groups = np.array(table.column("grp"))
    values = np.asarray(table.column("value"))
    rows = []
    worst = 0.0
    for row in many_q.sorted_rows():
        mask = groups == row["grp"]
        ordered = np.sort(values[mask])
        n_g = len(ordered)
        errors = []
        for phi in (0.25, 0.5, 0.75, 0.95, 0.99):
            got = row[f"q{phi:g}_value"]
            rank = int(np.searchsorted(ordered, got, side="left")) + 1
            hi = int(np.searchsorted(ordered, got, side="right"))
            target = int(np.ceil(phi * n_g))
            err = 0 if rank <= target <= hi else min(
                abs(target - rank), abs(target - hi)
            )
            errors.append(err / n_g)
        worst = max(worst, max(errors))
        rows.append(
            [row["grp"], row["count"], f"{max(errors):.6f}"]
        )
    table_txt = format_table(
        ["group", "rows", "max observed eps (5 quantiles)"],
        rows,
        title=(
            f"GROUP BY quantiles (eps={EPSILON}, N={N}, "
            f"{N_GROUPS} groups)"
        ),
    )
    memory_txt = (
        f"\nsketch memory, 1 quantile/group:  "
        f"{format_memory(one_q.sketch_memory_elements)} elements"
        f"\nsketch memory, 5 quantiles/group: "
        f"{format_memory(many_q.sketch_memory_elements)} elements"
        f"\ndata size:                        {format_memory(N)} elements"
    )

    # -- shape checks ---------------------------------------------------------
    # per-group error honours the table-level epsilon with huge slack
    # (each sketch was sized for the full table; groups are ~N/8)
    assert worst <= EPSILON * N_GROUPS  # eps*N error over ~N/8 rows
    # extra quantiles on the same column are free
    assert many_q.sketch_memory_elements == one_q.sketch_memory_elements
    # memory is a small fraction of the data
    assert many_q.sketch_memory_elements < N / 4
    return table_txt + memory_txt


def test_groupby(benchmark):
    output = benchmark.pedantic(build_groupby, rounds=1, iterations=1)
    emit("groupby_quantiles", output)


# ---------------------------------------------------------------------------
# Throughput benchmark: SketchBank executor vs per-sketch baseline
# ---------------------------------------------------------------------------


def _grouped_chunks(
    n_rows: int, n_groups: int, seed: int = 3
) -> List[Chunk]:
    rng = np.random.default_rng(seed)
    gids = rng.integers(0, n_groups, size=n_rows).astype(np.int64)
    values = rng.normal(size=n_rows)
    return [
        Chunk(
            columns={"g": gids[s : s + CHUNK], "x": values[s : s + CHUNK]},
            n_rows=min(CHUNK, n_rows - s),
        )
        for s in range(0, n_rows, CHUNK)
    ]


def _baseline_groupby(
    chunks: List[Chunk], n_hint: int
) -> Dict[int, QuantileSketch]:
    """Faithful replica of the pre-bank executor's hot loop.

    Per-row ``.item()`` key extraction, dict bucketing of row indices,
    then one boolean mask + sub-chunk copy per (group, chunk) feeding
    that group's own :class:`QuantileSketch` -- the path replaced by the
    bank.
    """
    sketches: Dict[int, QuantileSketch] = {}
    for chunk in chunks:
        keys = [v.item() for v in chunk["g"]]
        buckets: Dict[int, List[int]] = {}
        for i, key in enumerate(keys):
            buckets.setdefault(key, []).append(i)
        for key, idx in buckets.items():
            sk = sketches.get(key)
            if sk is None:
                sk = sketches[key] = QuantileSketch(
                    EPSILON, n=max(n_hint, 1)
                )
            mask = np.zeros(chunk.n_rows, dtype=bool)
            mask[idx] = True
            sub = chunk.take(mask)
            values = np.asarray(sub["x"], dtype=np.float64)
            values = values[~np.isnan(values)]
            if len(values):
                sk.extend(values)
    return sketches


def _time_best(fn, rounds: int) -> Tuple[float, object]:
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_groups(
    n_rows: int,
    group_counts: List[int],
    rounds: int,
    baseline_cap: int,
) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for n_groups in group_counts:
        chunks = _grouped_chunks(n_rows, n_groups)
        bank_t, bank_result = _time_best(
            lambda: execute_group_by(
                iter(chunks),
                ["g"],
                [median("x", EPSILON), count()],
                n_hint=n_rows,
            ),
            rounds,
        )
        base_rows = n_rows if n_groups < 1000 else min(n_rows, baseline_cap)
        base_chunks = (
            chunks
            if base_rows == n_rows
            else _grouped_chunks(base_rows, n_groups)
        )
        base_rounds = rounds if n_groups < 1000 else 1
        base_t, base_sketches = _time_best(
            lambda: _baseline_groupby(base_chunks, n_rows), base_rounds
        )
        identical: Optional[bool] = None
        if base_rows == n_rows:
            bank_medians = {
                row["g"]: row["q0.5_x"] for row in bank_result.rows
            }
            identical = all(
                bank_medians[key] == float(sk.query(0.5))
                for key, sk in base_sketches.items()
            ) and len(bank_medians) == len(base_sketches)
        out[str(n_groups)] = {
            "rows": n_rows,
            "baseline_rows": base_rows,
            "bank_rows_per_s": n_rows / bank_t,
            "baseline_rows_per_s": base_rows / base_t,
            "speedup": round((n_rows / bank_t) / (base_rows / base_t), 2),
            "answers_identical": identical,
        }
    return out


def bench_single_sketch(
    n_rows: int, rounds: int
) -> Dict[str, object]:
    """1-group overhead: bank single-destination path vs direct ingest."""
    data = np.random.default_rng(5).normal(size=n_rows)

    def direct():
        sk = QuantileSketch(EPSILON, n=n_rows)
        for s in range(0, n_rows, CHUNK):
            sk.extend(data[s : s + CHUNK])
        return sk

    def banked():
        bank = SketchBank(EPSILON, n=n_rows, n_sketches=1)
        for s in range(0, n_rows, CHUNK):
            bank.extend_single(0, data[s : s + CHUNK])
        return bank

    direct_t, sk = _time_best(direct, rounds)
    bank_t, bank = _time_best(banked, rounds)
    assert float(bank.query(0, 0.5)) == float(sk.query(0.5))
    return {
        "rows": n_rows,
        "direct_m_rows_per_s": round(n_rows / direct_t / 1e6, 2),
        "bank_m_rows_per_s": round(n_rows / bank_t / 1e6, 2),
        "overhead_pct": round((bank_t / direct_t - 1.0) * 100.0, 2),
    }


def bench_columns(
    n_rows: int, column_counts: List[int], rounds: int
) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for n_cols in column_counts:
        matrix = np.random.default_rng(11).normal(size=(n_rows, n_cols))
        names = [f"c{j}" for j in range(n_cols)]
        # pre-bank consume path: a mapping of contiguous per-column arrays
        columns = {
            name: np.ascontiguousarray(matrix[:, j])
            for j, name in enumerate(names)
        }

        def per_column():
            sketches = [
                QuantileSketch(EPSILON, n=n_rows) for _ in range(n_cols)
            ]
            for s in range(0, n_rows, CHUNK):
                for j, name in enumerate(names):
                    sketches[j].extend(columns[name][s : s + CHUNK])
            return sketches

        def banked():
            mc = MultiColumnSketcher(names, EPSILON, n=n_rows)
            for s in range(0, n_rows, CHUNK):
                mc.consume(matrix[s : s + CHUNK])
            return mc

        base_t, sketches = _time_best(per_column, rounds)
        bank_t, mc = _time_best(banked, rounds)
        assert mc.all_quantiles([0.5]) == {
            name: [float(sk.query(0.5))]
            for name, sk in zip(names, sketches)
        }
        out[str(n_cols)] = {
            "rows": n_rows,
            "values": n_rows * n_cols,
            "bank_m_values_per_s": round(
                n_rows * n_cols / bank_t / 1e6, 2
            ),
            "baseline_m_values_per_s": round(
                n_rows * n_cols / base_t / 1e6, 2
            ),
            "speedup": round(base_t / bank_t, 2),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-N smoke run for CI (validates the harness, not perf)",
    )
    parser.add_argument("--out", default=OUT_PATH, help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, rounds = 120_000, 1
        group_counts = [1, 100]
        column_counts = [4]
        column_rows = 60_000
    else:
        n_rows, rounds = 1_000_000, 3
        group_counts = [1, 10, 100, 1000, 10000]
        column_counts = [1, 4, 16]
        column_rows = 250_000

    groups = bench_groups(n_rows, group_counts, rounds, BASELINE_ROW_CAP)
    single = bench_single_sketch(n_rows, rounds)
    columns = bench_columns(column_rows, column_counts, rounds)
    report = {
        "meta": {
            "benchmark": "groupby",
            "quick": args.quick,
            "eps": EPSILON,
            "rows": n_rows,
            "column_rows": column_rows,
            "chunk": CHUNK,
            "rounds": rounds,
            "baseline_row_cap": BASELINE_ROW_CAP,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "groups": groups,
        "single_sketch": single,
        "columns": columns,
        "targets": {
            "speedup_100_groups": groups["100"]["speedup"],
            "target_100_groups": 5.0,
            "single_sketch_overhead_pct": single["overhead_pct"],
            "target_single_sketch_overhead_pct": 5.0,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps({"groups": groups, "single_sketch": single}, indent=2))
    print(f"100-group speedup: {groups['100']['speedup']}x (target 5x)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
