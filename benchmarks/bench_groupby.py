"""GROUP BY with quantile aggregates: the Section 7 execution scenario.

Measures the miniature engine running the paper's motivating SQL --
many concurrent QUANTILE aggregates in one pass -- and reports per-group
accuracy and total sketch memory.  The shape targets:

* every group's quantiles honour the stipulated epsilon;
* memory grows with the number of *groups*, not with the number of
  quantiles per column (Section 4.7: extra quantiles are free);
* total sketch memory stays orders of magnitude below the data size
  (the point of using the MRL summary inside GROUP BY at all).
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.engine import Query, Table, count, quantile

EPSILON = 0.01
N = 200_000
N_GROUPS = 8


def _table(seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    groups = [f"g{i}" for i in rng.integers(0, N_GROUPS, N)]
    values = rng.lognormal(3.0, 1.0, N)
    return Table.from_dict("metrics", {"grp": groups, "value": values})


def build_groupby() -> str:
    table = _table()
    one_q = (
        Query(table)
        .group_by("grp")
        .aggregate(quantile("value", 0.5, EPSILON), count())
        .execute()
    )
    many_q = (
        Query(table)
        .group_by("grp")
        .aggregate(
            quantile("value", 0.25, EPSILON),
            quantile("value", 0.5, EPSILON),
            quantile("value", 0.75, EPSILON),
            quantile("value", 0.95, EPSILON),
            quantile("value", 0.99, EPSILON),
            count(),
        )
        .execute()
    )

    groups = np.array(table.column("grp"))
    values = np.asarray(table.column("value"))
    rows = []
    worst = 0.0
    for row in many_q.sorted_rows():
        mask = groups == row["grp"]
        ordered = np.sort(values[mask])
        n_g = len(ordered)
        errors = []
        for phi in (0.25, 0.5, 0.75, 0.95, 0.99):
            got = row[f"q{phi:g}_value"]
            rank = int(np.searchsorted(ordered, got, side="left")) + 1
            hi = int(np.searchsorted(ordered, got, side="right"))
            target = int(np.ceil(phi * n_g))
            err = 0 if rank <= target <= hi else min(
                abs(target - rank), abs(target - hi)
            )
            errors.append(err / n_g)
        worst = max(worst, max(errors))
        rows.append(
            [row["grp"], row["count"], f"{max(errors):.6f}"]
        )
    table_txt = format_table(
        ["group", "rows", "max observed eps (5 quantiles)"],
        rows,
        title=(
            f"GROUP BY quantiles (eps={EPSILON}, N={N}, "
            f"{N_GROUPS} groups)"
        ),
    )
    memory_txt = (
        f"\nsketch memory, 1 quantile/group:  "
        f"{format_memory(one_q.sketch_memory_elements)} elements"
        f"\nsketch memory, 5 quantiles/group: "
        f"{format_memory(many_q.sketch_memory_elements)} elements"
        f"\ndata size:                        {format_memory(N)} elements"
    )

    # -- shape checks ---------------------------------------------------------
    # per-group error honours the table-level epsilon with huge slack
    # (each sketch was sized for the full table; groups are ~N/8)
    assert worst <= EPSILON * N_GROUPS  # eps*N error over ~N/8 rows
    # extra quantiles on the same column are free
    assert many_q.sketch_memory_elements == one_q.sketch_memory_elements
    # memory is a small fraction of the data
    assert many_q.sketch_memory_elements < N / 4
    return table_txt + memory_txt


def test_groupby(benchmark):
    output = benchmark.pedantic(build_groupby, rounds=1, iterations=1)
    emit("groupby_quantiles", output)


if __name__ == "__main__":
    print(build_groupby())
