"""Ablation: the even-weight offset alternation of Section 3.2.

Lemma 1 -- the foundation of the paper's error bound -- states that with
alternation the sum of COLLAPSE offsets is at least ``(W + C - 1) / 2``.
Pinning the even-weight offset to its "low" choice makes every even
collapse contribute ``w/2`` instead of averaging ``(w+1)/2``, so on a
schedule dominated by even weights (Munro-Paterson's power-of-two weights
are *all* even) the inequality fails and the bound's derivation collapses.

This bench runs the same stream under the three offset modes and reports:

* the Lemma 1 slack ``sum(offsets) - (W + C - 1)/2`` (the invariant);
* the observed quantile error (in practice the output degrades only
  mildly -- the paper's bound is a worst case -- but the *certificate* is
  void, which for a guarantee-driven system is the failure that matters).

Expected shape: "alternate" has non-negative slack always; "low" has
clearly negative slack on the Munro-Paterson schedule; "high" has
positive slack (it over-satisfies the lemma at the cost of symmetric
bias).
"""

from __future__ import annotations

import math
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import PHIS_15, emit

from repro.analysis import format_table
from repro.core import QuantileFramework
from repro.streams import random_permutation_stream, sorted_stream

N = 2**17 * 6  # enough leaves for several Munro-Paterson levels
B, K = 6, 2**11


def _run(stream, offset_mode: str):
    fw = QuantileFramework(
        B, K, policy="munro-paterson", offset_mode=offset_mode,
        record_tree=True,
    )
    for chunk in stream.chunks(1 << 18):
        fw.extend(chunk)
    fw.finish([0.5])
    stats = fw.recorder.stats()
    slack = stats.sum_offsets - stats.lemma1_lower_bound()
    estimates = fw.quantiles(PHIS_15)
    errors = []
    for phi, value in zip(PHIS_15, estimates):
        target = min(max(math.ceil(phi * stream.n), 1), stream.n)
        errors.append(abs((value + 1) - target) / stream.n)
    return slack, max(errors), stats.error_bound / stream.n


def build_ablation() -> str:
    rows = []
    slacks = {}
    for order, stream_fn in (
        ("sorted", lambda: sorted_stream(N)),
        ("random", lambda: random_permutation_stream(N, seed=5)),
    ):
        for mode in ("alternate", "low", "high"):
            slack, max_err, bound = _run(stream_fn(), mode)
            slacks[(order, mode)] = slack
            rows.append(
                [
                    order,
                    mode,
                    f"{slack:+.1f}",
                    f"{max_err:.6f}",
                    f"{bound:.6f}",
                ]
            )
    table = format_table(
        [
            "order",
            "offset mode",
            "Lemma 1 slack",
            "max observed eps",
            "nominal bound / N",
        ],
        rows,
        title=(
            f"Offset alternation ablation "
            f"(Munro-Paterson schedule, b={B}, k={K}, N={N})"
        ),
    )

    # -- shape checks ---------------------------------------------------------
    for order in ("sorted", "random"):
        assert slacks[(order, "alternate")] >= 0, "Lemma 1 must hold"
        assert slacks[(order, "low")] < 0, (
            "pinned-low must violate Lemma 1 on an even-weight schedule"
        )
        assert slacks[(order, "high")] > slacks[(order, "alternate")]
    return table


def test_ablation_offsets(benchmark):
    output = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    emit("ablation_offsets", output)


if __name__ == "__main__":
    print(build_ablation())
