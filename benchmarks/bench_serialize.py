"""Extension bench: serialised sketch sizes.

Statistics catalogs store one sketch per column; their on-disk size is an
operational concern.  This bench serialises summaries across the Table 1
configuration grid and reports bytes on the wire vs the in-memory element
footprint.

Expected shape: the wire size is ~8 bytes per resident element plus a few
dozen bytes of header/bookkeeping -- i.e. the summary's compactness
survives persistence, and a whole 100-column catalog at eps=0.005 fits in
a few megabytes regardless of table size.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.core import QuantileFramework
from repro.core.serialize import dumps

CONFIGS = [
    (0.05, 10**5),
    (0.01, 10**5),
    (0.01, 10**6),
    (0.005, 10**6),
    (0.001, 10**6),
]


def build_serialize() -> str:
    rng = np.random.default_rng(6)
    rows = []
    overheads = []
    for eps, n in CONFIGS:
        fw = QuantileFramework.from_accuracy(eps, n)
        fw.extend(rng.permutation(n).astype(np.float64))
        raw = dumps(fw)
        data_bytes = 8 * fw.memory_elements
        overhead = len(raw) / data_bytes
        overheads.append(overhead)
        rows.append(
            [
                f"{eps:g}",
                n,
                format_memory(fw.memory_elements),
                len(raw),
                f"{overhead:.2f}x",
            ]
        )
    table = format_table(
        [
            "eps",
            "N",
            "resident elements",
            "serialised bytes",
            "bytes / (8 * b*k)",
        ],
        rows,
        title="Serialised sketch size vs in-memory footprint",
    )
    # the wire format stays within 2x of the raw element payload: only
    # occupied buffers are written, so a partially filled summary can
    # even undershoot b*k.
    assert all(o <= 2.0 for o in overheads)
    return table


def test_serialize(benchmark):
    output = benchmark.pedantic(build_serialize, rounds=1, iterations=1)
    emit("serialized_sizes", output)


if __name__ == "__main__":
    print(build_serialize())
