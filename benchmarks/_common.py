"""Shared plumbing for the benchmark harness.

Every ``bench_*.py`` file regenerates one of the paper's tables or figures.
Each prints its output (visible with ``pytest benchmarks/ --benchmark-only
-s`` or by running the file directly) and also writes it under
``benchmarks/results/`` so a full run leaves a reviewable artifact trail.

The timing side (pytest-benchmark) measures a representative unit of work
per experiment; the *content* -- the rows of the table -- is produced once
and checked against the paper's qualitative claims by assertions inside
the bench itself, so ``--benchmark-only`` doubles as a reproduction check.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The (epsilon, N) grid of Table 1 / Figure 7.
EPSILONS = [0.100, 0.050, 0.010, 0.005, 0.001]
NS = [10**5, 10**6, 10**7, 10**8, 10**9]
DELTAS = [1e-2, 1e-3, 1e-4]

#: The 15 quantile fractions of Table 3.
PHIS_15 = [q / 16 for q in range(1, 16)]


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def grid_header(ns: Iterable[int]) -> list:
    return ["eps \\ N"] + [f"1e{len(str(n)) - 1}" for n in ns]
