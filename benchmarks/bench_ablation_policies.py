"""Ablation: the three collapse policies head-to-head at equal accuracy.

Sizes each policy for the *same* (epsilon, N) target -- so they deliver
the same guarantee -- and reports the memory each needs plus the observed
error across all the arrival orders of Section 1.2.  This is the runtime
counterpart of Table 1: not just "the new policy needs fewer bytes on
paper" but "it needs fewer bytes while actually honouring the same
guarantee on real streams".
"""

from __future__ import annotations

import math
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import PHIS_15, emit

from repro.analysis import format_memory, format_table
from repro.core import QuantileFramework
from repro.core.parameters import optimal_parameters
from repro.streams import STANDARD_ORDERS

EPSILON = 0.005
N = 2 * 10**5
POLICIES = ("new", "munro-paterson", "alsabti-ranka-singh")


def build_ablation() -> str:
    rows = []
    memories = {}
    worst = {policy: 0.0 for policy in POLICIES}
    for policy in POLICIES:
        plan = optimal_parameters(EPSILON, N, policy=policy)
        memories[policy] = plan.memory
        for stream in STANDARD_ORDERS(N, seed=2):
            fw = QuantileFramework(plan.b, plan.k, policy=policy)
            for chunk in stream.chunks():
                fw.extend(chunk)
            estimates = fw.quantiles(PHIS_15)
            errors = [
                abs((v + 1) - min(max(math.ceil(phi * N), 1), N)) / N
                for phi, v in zip(PHIS_15, estimates)
            ]
            worst[policy] = max(worst[policy], max(errors))
            rows.append(
                [
                    policy,
                    stream.name,
                    format_memory(plan.memory),
                    f"{max(errors):.6f}",
                    f"{sum(errors) / len(errors):.6f}",
                ]
            )
    table = format_table(
        ["policy", "arrival order", "memory bk", "max eps", "mean eps"],
        rows,
        title=(
            f"Policies at equal guarantee (eps={EPSILON}, N={N}, "
            f"15 quantiles)"
        ),
    )

    # -- shape checks ---------------------------------------------------------
    # every policy honours the guarantee on every order
    for policy in POLICIES:
        assert worst[policy] <= EPSILON, (policy, worst[policy])
    # the new policy needs the least memory for it (Section 4.6)
    assert memories["new"] <= memories["munro-paterson"]
    assert memories["new"] <= memories["alsabti-ranka-singh"]
    return table


def test_ablation_policies(benchmark):
    output = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    emit("ablation_policies", output)


if __name__ == "__main__":
    print(build_ablation())
