"""Extension bench: the unknown-N adaptive sketch vs the known-N optimum.

The 1998 algorithm requires N up front; ``AdaptiveQuantileSketch`` (this
library's §7-future-work extension) removes that requirement by staging
geometrically-growing summaries.  This bench quantifies the price: for
stream lengths spanning four orders of magnitude, it compares

* memory: adaptive vs the optimal known-N configuration at the same eps;
* accuracy: observed error and the certified bound, both of which must
  stay under eps.

Expected shape: adaptive memory tracks the known-N optimum within a small
multiple (the extra log factor), and the guarantee holds at every length
-- the adaptive sketch never knows how long the stream will be.
"""

from __future__ import annotations

import math
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.core.adaptive import AdaptiveQuantileSketch
from repro.core.parameters import optimal_parameters

EPSILON = 0.01
LENGTHS = [10**3, 10**4, 10**5, 10**6, 5 * 10**6]


def build_adaptive() -> str:
    rows = []
    ratios = []
    rng = np.random.default_rng(12)
    for n in LENGTHS:
        data = rng.permutation(n).astype(np.float64)
        sk = AdaptiveQuantileSketch(epsilon=EPSILON)
        for i in range(0, n, 1 << 18):
            sk.extend(data[i : i + (1 << 18)])
        worst = 0.0
        for phi in (0.1, 0.5, 0.9):
            got = sk.query(phi)
            target = min(max(math.ceil(phi * n), 1), n)
            worst = max(worst, abs((got + 1) - target) / n)
        known = optimal_parameters(EPSILON, n, policy="new").memory
        ratio = sk.memory_elements / known
        ratios.append(ratio)
        assert worst <= EPSILON, (n, worst)
        assert sk.error_bound() <= EPSILON * n + 1
        rows.append(
            [
                n,
                sk.n_stages,
                format_memory(sk.memory_elements),
                format_memory(known),
                f"{ratio:.1f}x",
                f"{worst:.6f}",
                f"{sk.error_bound_fraction():.6f}",
            ]
        )
    table = format_table(
        [
            "stream length",
            "stages",
            "adaptive memory",
            "known-N memory",
            "overhead",
            "max observed eps",
            "certified bound/n",
        ],
        rows,
        title=f"Unknown-N adaptive sketch vs known-N optimum (eps={EPSILON})",
    )
    # the overhead is bounded (one extra log factor, small constants)
    assert max(ratios) < 12
    return table


def test_adaptive(benchmark):
    output = benchmark.pedantic(build_adaptive, rounds=1, iterations=1)
    emit("adaptive_unknown_n", output)


if __name__ == "__main__":
    print(build_adaptive())
