"""The antecedents of Section 2 vs the new algorithm, at comparable memory.

The paper's motivating argument: prior one-pass estimators (P^2 [16],
Agrawal-Swami [17]) are cheap but carry *no guarantee*, and naive random
sampling needs a large resident sample for a merely probabilistic one.
This bench gives every contender a comparable memory budget and measures
the observed median error across arrival orders and value distributions.

Expected shape: the MRL summary never exceeds its epsilon on any input;
each unguaranteed baseline has at least one input family where it drifts
well past that epsilon.
"""

from __future__ import annotations

import math
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import evaluate, format_table
from repro.baselines import (
    AgrawalSwamiHistogram,
    P2Quantile,
    ReservoirSampler,
)
from repro.core import QuantileFramework
from repro.core.parameters import optimal_parameters
from repro.streams import (
    alternating_extremes_stream,
    clustered_stream,
    correlated_stream,
    random_permutation_stream,
    sorted_stream,
    zipf_stream,
)

EPSILON = 0.01
N = 10**5


def _streams():
    return [
        sorted_stream(N),
        random_permutation_stream(N, seed=3),
        clustered_stream(N, seed=3),
        alternating_extremes_stream(N),
        correlated_stream(N, trend=100.0, noise=1.0, seed=3),
        zipf_stream(N, exponent=1.3, seed=3),
    ]


def build_comparison() -> str:
    plan = optimal_parameters(EPSILON, N, policy="new")
    budget = plan.memory
    rows = []
    worst = {}
    for stream in _streams():
        data = stream.materialize()
        contenders = {
            "mrl-new": QuantileFramework(plan.b, plan.k, policy="new"),
            "p2": P2Quantile(0.5),
            "agrawal-swami": AgrawalSwamiHistogram(
                max(budget // 2, 4)
            ),
            "reservoir": ReservoirSampler(budget, seed=7),
        }
        for name, summary in contenders.items():
            if name == "mrl-new":
                summary.extend(data)
                estimate = summary.query(0.5)
            elif name == "p2":
                summary.extend(data)
                estimate = summary.query()
            else:
                summary.extend(data)
                estimate = summary.query(0.5)
            err = evaluate(data, [0.5], [float(estimate)]).max_error
            worst[name] = max(worst.get(name, 0.0), err)
            rows.append(
                [
                    stream.name,
                    name,
                    summary.memory_elements,
                    f"{err:.6f}",
                ]
            )
    table = format_table(
        ["stream", "algorithm", "memory (elems)", "median rank error"],
        rows,
        title=(
            f"Median estimation at comparable memory "
            f"(eps={EPSILON}, N={N}, budget ~{budget} elements)"
        ),
    )

    # -- shape checks ---------------------------------------------------------
    assert worst["mrl-new"] <= EPSILON, worst["mrl-new"]
    # the reservoir holds a guarantee too (probabilistic; seeds fixed)
    # but the unguaranteed heuristics must show a failure mode somewhere
    assert max(worst["p2"], worst["agrawal-swami"]) > EPSILON, (
        "expected at least one heuristic to breach epsilon on some order"
    )
    return table


def test_baselines(benchmark):
    output = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    emit("baselines_comparison", output)


if __name__ == "__main__":
    print(build_comparison())
