"""Table 1: optimal b, k and total memory bk for all four algorithms.

Regenerates, for every (epsilon, N) cell of the paper's grid:

* the Munro-Paterson sub-table (Section 4.3),
* the Alsabti-Ranka-Singh sub-table (Section 4.4),
* the new algorithm's sub-table (Section 4.5),
* the "Sampling followed by New Algorithm for 99.99% confidence"
  sub-table (Section 5.2, delta = 1e-4).

These are pure arithmetic, so the reproduction is exact: the asserts at
the bottom pin a sample of cells to the paper's printed values, and the
qualitative claim of Section 4.6 ("the new algorithm is always better")
is checked across the whole grid.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import EPSILONS, NS, emit, grid_header

from repro.analysis import format_memory, format_table
from repro.core.parameters import optimal_parameters
from repro.core.sampling import choose_strategy


def _policy_grid(policy: str):
    return {
        (eps, n): optimal_parameters(eps, n, policy=policy)
        for eps in EPSILONS
        for n in NS
    }


def _sampling_grid(delta: float):
    return {
        (eps, n): choose_strategy(eps, n, delta)
        for eps in EPSILONS
        for n in NS
    }


def _render(name: str, grid) -> str:
    blocks = []
    for title, cell in (
        ("Number of buffers b", lambda p: p.b),
        ("Size of buffer k", lambda p: p.k),
        ("Total memory bk", lambda p: format_memory(p.memory)),
    ):
        rows = [
            [f"{eps:.3f}"] + [cell(grid[(eps, n)]) for n in NS]
            for eps in EPSILONS
        ]
        blocks.append(
            format_table(grid_header(NS), rows, title=f"{name} -- {title}")
        )
    return "\n\n".join(blocks)


def build_table1() -> str:
    sections = []
    mp = _policy_grid("munro-paterson")
    ars = _policy_grid("alsabti-ranka-singh")
    new = _policy_grid("new")
    sampled = _sampling_grid(1e-4)
    sections.append(_render("Munro-Paterson Algorithm", mp))
    sections.append(_render("Alsabti-Ranka-Singh Algorithm", ars))
    sections.append(_render("New Algorithm", new))
    sections.append(
        _render("Sampling + New Algorithm (99.99% confidence)", sampled)
    )

    # -- reproduction checks (exact cells from the paper) ------------------
    assert (mp[(0.1, 10**5)].b, mp[(0.1, 10**5)].k) == (11, 98)
    assert (mp[(0.001, 10**9)].b, mp[(0.001, 10**9)].k) == (17, 15259)
    assert (ars[(0.05, 10**7)].b, ars[(0.05, 10**7)].k) == (1998, 11)
    assert (new[(0.01, 10**8)].b, new[(0.01, 10**8)].k) == (10, 596)
    assert (new[(0.001, 10**5)].b, new[(0.001, 10**5)].k) == (3, 2778)
    # sampling sub-table: direct below the threshold, fixed plan above it
    small = sampled[(0.01, 10**5)]
    large = sampled[(0.01, 10**8)]
    assert (small.b, small.k) == (7, 217)  # same as the direct algorithm
    assert (large.b, large.k) == (6, 472)  # the paper's sampled plan
    # Section 4.6: the new algorithm is always better in space
    for key, plan in new.items():
        assert plan.memory <= mp[key].memory
        assert plan.memory <= ars[key].memory
    return "\n\n\n".join(sections)


def test_table1(benchmark):
    table = benchmark(build_table1)
    emit("table1", table)


if __name__ == "__main__":
    print(build_table1())
