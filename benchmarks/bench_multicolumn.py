"""Application bench: many columns summarised in one table scan.

Section 1.2: *"it is desirable to compute histograms for multiple columns
of a table in a single pass over a table"*.  This bench scans one wide
table once, summarising 1 / 4 / 16 / 64 columns concurrently, and reports
total sketch memory and per-column accuracy.

Expected shape: memory scales linearly in the number of columns (each
column owns one `O((1/eps) log^2 eps N)` sketch), stays a small fraction
of the table, and every column's quantiles honour epsilon -- there is no
cross-column interference.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_memory, format_table
from repro.multicolumn import MultiColumnSketcher

N = 100_000
EPSILON = 0.005
COLUMN_COUNTS = [1, 4, 16, 64]


def _wide_chunks(n_columns: int, chunk: int = 1 << 14):
    rng = np.random.default_rng(9)
    names = [f"c{i}" for i in range(n_columns)]
    for start in range(0, N, chunk):
        size = min(chunk, N - start)
        yield {
            name: rng.normal(i, 1 + i * 0.1, size)
            for i, name in enumerate(names)
        }


def build_multicolumn() -> str:
    rows = []
    memories = {}
    for n_cols in COLUMN_COUNTS:
        names = [f"c{i}" for i in range(n_cols)]
        sketcher = MultiColumnSketcher(names, EPSILON, n=N)
        collected: dict = {name: [] for name in names}
        for chunk in _wide_chunks(n_cols):
            sketcher.consume(chunk)
            for name in names:
                collected[name].append(chunk[name])
        # verify a sample of columns end to end
        worst = 0.0
        for name in (names[0], names[-1]):
            data = np.sort(np.concatenate(collected[name]))
            for phi in (0.25, 0.5, 0.75):
                got = sketcher.quantiles(name, [phi])[0]
                rank = int(np.searchsorted(data, got, side="left")) + 1
                target = int(np.ceil(phi * N))
                worst = max(worst, abs(rank - target) / N)
        memories[n_cols] = sketcher.memory_elements
        rows.append(
            [
                n_cols,
                format_memory(sketcher.memory_elements),
                f"{sketcher.memory_elements / (n_cols * N):.3%}",
                f"{worst:.6f}",
            ]
        )
    table = format_table(
        [
            "columns",
            "total sketch memory",
            "memory / table cells",
            "worst observed eps (sampled cols)",
        ],
        rows,
        title=(
            f"Multi-column single-pass summaries "
            f"(eps={EPSILON}, {N} rows)"
        ),
    )

    # -- shape checks ---------------------------------------------------------
    # linear scaling in column count
    assert memories[4] == 4 * memories[1]
    assert memories[64] == 64 * memories[1]
    # still a small fraction of the table itself
    assert memories[64] < 64 * N / 10
    return table


def test_multicolumn(benchmark):
    output = benchmark.pedantic(build_multicolumn, rounds=1, iterations=1)
    emit("multicolumn_single_pass", output)


if __name__ == "__main__":
    print(build_multicolumn())
