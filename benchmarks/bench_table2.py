"""Table 2: memory for sampling followed by the new algorithm.

For every epsilon in {.1, .05, .01, .005, .001} and delta in
{1e-2, 1e-3, 1e-4}, reports the optimal split ``alpha * eps``, the sample
size S, and the resulting (b, k, bk) -- the structure of the paper's
Table 2.

Reproduction note (see EXPERIMENTS.md): with the faithful Lemma 7 sample
size ``S = ln(2/delta) / (2 eps2^2)``, the optimiser reproduces the
paper's alpha*eps, b, k and bk columns exactly; the *printed* S column of
the paper is consistent with ``S = ln(2/delta) / (2 eps^2)`` instead (the
full budget in the exponent).  Both are reported below.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import DELTAS, EPSILONS, emit

from repro.analysis import format_memory, format_table
from repro.core.sampling import hoeffding_sample_size, optimize_alpha


def build_table2() -> str:
    plans = {
        (eps, delta): optimize_alpha(eps, delta)
        for eps in EPSILONS
        for delta in DELTAS
    }
    headers = ["eps \\ delta"] + [f"1e{int(round(__import__('math').log10(d)))}" for d in DELTAS]
    blocks = []
    for title, cell in (
        ("alpha * eps", lambda p: f"{p.eps1:.4f}"),
        ("Sample size S (Lemma 7)", lambda p: format_memory(p.sample_size)),
        (
            "Sample size S (paper's printed convention)",
            lambda p: format_memory(
                hoeffding_sample_size(
                    0.0, p.delta, rule="table2", epsilon=p.epsilon
                )
            ),
        ),
        ("Number of buffers b", lambda p: p.b),
        ("Size of buffer k", lambda p: p.k),
        ("Total memory bk", lambda p: format_memory(p.memory)),
    ):
        rows = [
            [f"{eps:.3f}"] + [cell(plans[(eps, d)]) for d in DELTAS]
            for eps in EPSILONS
        ]
        blocks.append(format_table(headers, rows, title=title))

    # -- reproduction checks ------------------------------------------------
    # (b, k) cells from the paper's Table 2
    assert (plans[(0.01, 1e-4)].b, plans[(0.01, 1e-4)].k) == (6, 472)
    assert (plans[(0.005, 1e-4)].b, plans[(0.005, 1e-4)].k) == (7, 937)
    # memory grows as confidence tightens and is independent of any N
    for eps in EPSILONS:
        memories = [plans[(eps, d)].memory for d in DELTAS]
        assert memories == sorted(memories)
    # alpha lands strictly inside the paper's (0.2, 0.8) search window
    for plan in plans.values():
        assert 0.2 <= plan.alpha <= 0.8
    return "\n\n".join(blocks)


def test_table2(benchmark):
    table = benchmark(build_table2)
    emit("table2", table)


if __name__ == "__main__":
    print(build_table2())
