"""Ingest throughput: the timing benchmark proper.

Where the other bench files regenerate the paper's tables/figures (and
use pytest-benchmark only to time table construction), this one measures
the library as software: elements/second through each policy's summary
and through the sampling front-end, at the paper's flagship setting
(eps = 0.01 sized for N = 1e6).

pytest-benchmark reports the timing; the derived elements/second figures
are also printed for the results directory.
"""

from __future__ import annotations

import sys
import time

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_table
from repro.core import QuantileFramework
from repro.core.parameters import optimal_parameters
from repro.core.sampling import SampledQuantileFramework

EPSILON = 0.01
N = 10**6
CHUNK = 1 << 17


def _data():
    return np.random.default_rng(3).permutation(N).astype(np.float64)


def _ingest(summary, data):
    for i in range(0, len(data), CHUNK):
        summary.extend(data[i : i + CHUNK])
    return summary.query(0.5)


def _make(policy: str):
    plan = optimal_parameters(EPSILON, N, policy=policy)
    return QuantileFramework(plan.b, plan.k, policy=policy)


def test_ingest_new_policy(benchmark):
    data = _data()
    benchmark.pedantic(
        lambda: _ingest(_make("new"), data), rounds=3, iterations=1
    )


def test_ingest_munro_paterson(benchmark):
    data = _data()
    benchmark.pedantic(
        lambda: _ingest(_make("munro-paterson"), data), rounds=3, iterations=1
    )


def test_ingest_alsabti_ranka_singh(benchmark):
    data = _data()
    benchmark.pedantic(
        lambda: _ingest(_make("alsabti-ranka-singh"), data),
        rounds=3,
        iterations=1,
    )


def test_ingest_sampled(benchmark):
    data = _data()
    benchmark.pedantic(
        lambda: _ingest(
            SampledQuantileFramework(EPSILON, N, 1e-4, seed=1), data
        ),
        rounds=3,
        iterations=1,
    )


def test_throughput_summary(benchmark):
    """One pass per contender, reported as elements/second."""

    def build() -> str:
        data = _data()
        rows = []
        for name, factory in (
            ("new", lambda: _make("new")),
            ("munro-paterson", lambda: _make("munro-paterson")),
            ("alsabti-ranka-singh", lambda: _make("alsabti-ranka-singh")),
            (
                "sampling+new (delta=1e-4)",
                lambda: SampledQuantileFramework(EPSILON, N, 1e-4, seed=1),
            ),
        ):
            summary = factory()
            start = time.perf_counter()
            _ingest(summary, data)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    name,
                    summary.memory_elements,
                    f"{N / elapsed / 1e6:.2f}",
                ]
            )
        return format_table(
            ["algorithm", "memory (elems)", "M elements / s"],
            rows,
            title=f"Single-pass ingest throughput (eps={EPSILON}, N={N})",
        )

    output = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("throughput", output)


if __name__ == "__main__":
    emit_target = test_throughput_summary

    class _Bench:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            return fn()

    test_throughput_summary(_Bench())
