"""Statistical validation bench: the guarantee over many trials.

Table 3 reports one run per cell.  This bench strengthens the claim
statistically: for several (epsilon, policy) configurations it runs many
independent trials over the full arrival-order suite and reports the
observed-error distribution (mean / p95 / max) against both epsilon and
the certified bound.

Expected shape: zero breaches anywhere; observed errors concentrate an
order of magnitude below epsilon (the Section 6 observation); the
certified bound sits between the observed errors and epsilon.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_table
from repro.validation import verify_guarantee

N = 50_000
TRIALS = 15
CONFIGS = [
    (0.01, "new"),
    (0.005, "new"),
    (0.01, "munro-paterson"),
    (0.01, "alsabti-ranka-singh"),
]


def build_validation() -> str:
    rows = []
    for epsilon, policy in CONFIGS:
        report = verify_guarantee(
            epsilon, N, policy=policy, n_trials=TRIALS, seed=1998
        )
        assert report.breaches == 0, (epsilon, policy)
        assert report.max_observed <= report.worst_certified + 1e-12
        assert report.worst_certified <= epsilon
        rows.append(
            [
                policy,
                f"{epsilon:g}",
                report.n_measurements,
                f"{report.mean_observed:.2e}",
                f"{report.percentile(0.95):.2e}",
                f"{report.max_observed:.2e}",
                f"{report.worst_certified:.2e}",
                report.breaches,
            ]
        )
    return format_table(
        [
            "policy",
            "eps",
            "measurements",
            "mean observed",
            "p95 observed",
            "max observed",
            "worst certified",
            "breaches",
        ],
        rows,
        title=(
            f"Guarantee validation: {TRIALS} trials x 5 quantiles x "
            f"5 arrival orders, N={N}"
        ),
    )


def test_validation(benchmark):
    output = benchmark.pedantic(build_validation, rounds=1, iterations=1)
    emit("guarantee_validation", output)


if __name__ == "__main__":
    print(build_validation())
