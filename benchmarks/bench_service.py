"""Service ingest throughput: the TCP server versus in-process SketchBank.

The acceptance target for the service subsystem is that batched ingest
through the full stack -- frame encode, TCP, asyncio server, journal-less
registry enqueue, vectorized shard drain -- stays within 2x of direct
in-process :class:`~repro.core.bank.SketchBank` ingest once batches are
large (>= 4096 values), i.e. the protocol disappears into the batch.

Four measurements, written to ``BENCH_service.json``:

* ``direct``     -- in-process ``SketchBank.extend_pairs`` over the same
  metric/batch schedule: the ceiling the server is judged against.
* ``service``    -- a pipelined client driving an ephemeral (journal-free)
  server, across batch sizes and shard counts.
* ``durable``    -- the same with the write-ahead journal on, to price
  durability separately from protocol overhead.
* ``resilience`` -- the same workload with idempotency tokens on versus
  off (zero faults injected), to price the retry layer itself: token
  generation, the unacked-request window, and the server-side dedup
  lookup.  Gated at <= 5% overhead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.bank import SketchBank
from repro.service import QuantileClient, ServerThread

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

EPSILON = 0.01
DESIGN_N = 50_000_000
N_METRICS = 8


def _schedule(
    total_elements: int, batch: int, seed: int = 0
) -> List[Tuple[int, np.ndarray]]:
    """(metric index, values) batches, round-robin across metrics."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=total_elements)
    out = []
    for i, start in enumerate(range(0, total_elements, batch)):
        out.append((i % N_METRICS, data[start : start + batch]))
    return out


def _rate(elements: int, seconds: float) -> float:
    return elements / seconds if seconds > 0 else float("inf")


def bench_direct(
    total_elements: int, batch: int, rounds: int
) -> Dict[str, object]:
    """In-process SketchBank ingest: the 2x-target baseline."""
    schedule = _schedule(total_elements, batch)
    best = float("inf")
    for _ in range(rounds):
        bank = SketchBank(EPSILON, DESIGN_N, n_sketches=N_METRICS)
        t0 = time.perf_counter()
        for metric, values in schedule:
            bank.extend_pairs([(metric, values)])
        best = min(best, time.perf_counter() - t0)
    return {
        "batch": batch,
        "elements": total_elements,
        "seconds": round(best, 4),
        "elements_per_s": round(_rate(total_elements, best)),
    }


def bench_service(
    total_elements: int,
    batch: int,
    n_shards: int,
    rounds: int,
    data_dir: Optional[str] = None,
    idempotency: bool = True,
) -> Dict[str, object]:
    """Pipelined client -> TCP -> asyncio server -> shard drain."""
    schedule = _schedule(total_elements, batch)
    names = [f"bench/m{i}" for i in range(N_METRICS)]
    best = float("inf")
    for round_idx in range(rounds):
        run_dir = (
            os.path.join(data_dir, f"round{round_idx}") if data_dir else None
        )
        if run_dir:
            os.makedirs(run_dir, exist_ok=True)
        with ServerThread(
            data_dir=run_dir, n_shards=n_shards, snapshot_interval_s=None
        ) as server:
            with QuantileClient(
                "127.0.0.1", server.port, idempotency=idempotency
            ) as client:
                for name in names:
                    client.create(
                        name, kind="fixed", epsilon=EPSILON, n=DESIGN_N
                    )
                t0 = time.perf_counter()
                for metric, values in schedule:
                    client.ingest_nowait(names[metric], values)
                client.flush()
                client.drain()
                elapsed = time.perf_counter() - t0
                _, _, n = client.query(names[0], [0.5])
                assert n > 0
        best = min(best, elapsed)
    return {
        "batch": batch,
        "shards": n_shards,
        "elements": total_elements,
        "seconds": round(best, 4),
        "elements_per_s": round(_rate(total_elements, best)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-N smoke run for CI (validates the harness, not perf)",
    )
    parser.add_argument("--out", default=OUT_PATH, help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        total, rounds = 400_000, 1
        batch_sizes = [1024, 4096, 16384]
        shard_counts = [2]
        durable_batch = 4096
    else:
        total, rounds = 4_000_000, 3
        batch_sizes = [256, 1024, 4096, 16384, 65536]
        shard_counts = [1, 2, 4, 8]
        durable_batch = 4096

    direct = {
        str(b): bench_direct(total, b, rounds) for b in batch_sizes
    }

    service: Dict[str, Dict[str, object]] = {}
    for batch in batch_sizes:
        per_shard = {}
        for shards in shard_counts:
            per_shard[str(shards)] = bench_service(
                total, batch, shards, rounds
            )
        baseline = direct[str(batch)]["elements_per_s"]
        best_shards = max(
            per_shard.values(), key=lambda e: e["elements_per_s"]
        )
        service[str(batch)] = {
            "by_shards": per_shard,
            "best_elements_per_s": best_shards["elements_per_s"],
            "slowdown_vs_direct": round(
                baseline / best_shards["elements_per_s"], 3
            ),
        }

    with tempfile.TemporaryDirectory() as tmp:
        durable = bench_service(
            total, durable_batch, shard_counts[-1], rounds, data_dir=tmp
        )
    durable["slowdown_vs_direct"] = round(
        direct[str(durable_batch)]["elements_per_s"]
        / durable["elements_per_s"],
        3,
    )

    # resilience overhead: identical fault-free workload, tokens on vs
    # off.  Best-of-N with extra rounds because the gate is tight (5%)
    # and both runs must beat scheduler noise, not each other.
    res_rounds = max(rounds, 5 if args.quick else 3)
    tokens_on = bench_service(
        total, durable_batch, shard_counts[-1], res_rounds,
        idempotency=True,
    )
    tokens_off = bench_service(
        total, durable_batch, shard_counts[-1], res_rounds,
        idempotency=False,
    )
    overhead_ratio = round(
        tokens_off["elements_per_s"] / tokens_on["elements_per_s"], 3
    )
    resilience = {
        "tokens_on": tokens_on,
        "tokens_off": tokens_off,
        "overhead_ratio": overhead_ratio,
        "target_overhead_ratio": 1.05,
    }

    gate_batches = [b for b in batch_sizes if b >= 4096]
    report = {
        "meta": {
            "benchmark": "service",
            "quick": args.quick,
            "eps": EPSILON,
            "design_n": DESIGN_N,
            "metrics": N_METRICS,
            "elements": total,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "direct": direct,
        "service": service,
        "durable": durable,
        "resilience": resilience,
        "targets": {
            "max_slowdown_at_4096_plus": max(
                service[str(b)]["slowdown_vs_direct"] for b in gate_batches
            ),
            "target_slowdown": 2.0,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    for batch in batch_sizes:
        entry = service[str(batch)]
        print(
            f"batch {batch:>6}: direct "
            f"{direct[str(batch)]['elements_per_s']:>12,} el/s, "
            f"service best {entry['best_elements_per_s']:>12,} el/s "
            f"({entry['slowdown_vs_direct']}x slower)"
        )
    print(
        f"durable (journal on, batch {durable_batch}): "
        f"{durable['elements_per_s']:,} el/s "
        f"({durable['slowdown_vs_direct']}x slower than direct)"
    )
    print(
        f"resilience (batch {durable_batch}): tokens on "
        f"{tokens_on['elements_per_s']:,} el/s, off "
        f"{tokens_off['elements_per_s']:,} el/s "
        f"({overhead_ratio}x overhead, target <= 1.05x)"
    )
    print(
        f"gate: worst slowdown at batch >= 4096 is "
        f"{report['targets']['max_slowdown_at_4096_plus']}x "
        f"(target <= 2x)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
