"""Service ingest throughput: the TCP server versus in-process SketchBank.

The acceptance target for the service subsystem is that batched ingest
through the full stack -- zero-copy frame encode, TCP, coalesced asyncio
server, journal-less registry enqueue, vectorized shard drain -- stays
within 1.3x of direct in-process
:class:`~repro.core.bank.SketchBank` ingest once batches are large
(>= 4096 values), i.e. the protocol disappears into the batch.

Five measurements, written to ``BENCH_service.json``:

* ``direct``     -- in-process ``SketchBank.extend_pairs`` over the same
  metric/batch schedule: the ceiling the server is judged against.
* ``service``    -- a pipelined client driving an ephemeral (journal-free)
  server, across batch sizes and shard counts.
* ``durable``    -- the same with the write-ahead journal on, to price
  durability separately from protocol overhead.
* ``resilience`` -- the same workload with idempotency tokens on versus
  off (zero faults injected), to price the retry layer itself: token
  generation, the unacked-request window, and the server-side dedup
  lookup.  Gated at <= 5% overhead.
* ``scaling``    -- the multi-process cluster
  (:class:`~repro.service.cluster.ClusterService`) at 1, 2, ... worker
  processes, each blasted by its own driver process.  The >1.6x
  two-worker speedup gate only applies when the recorded *effective*
  CPU affinity (``meta.effective_cpus``, from ``sched_getaffinity`` --
  not ``cpu_count``, which lies inside cgroup-limited containers) is
  >= 2; on a single-core box the section still runs and records the
  honest numbers with ``gate_applicable: false``.
* ``cluster``    -- the multi-node consistent-hash cluster
  (:mod:`repro.cluster`) under the same conditions, at nodes x R
  configs.  Gated: the 1-node/R=1 config must reach >= 0.8x of the
  1-worker ``ClusterService`` rate -- the price of ring routing and
  the cluster client's replication plumbing with replication off.
  The R=2 rows record what paying for availability costs (every
  logical element is written to two nodes).
* ``rebalance``  -- ingest throughput on a 3-node R=2 journal-backed
  cluster while a killed-and-restarted node re-syncs on a background
  thread, versus the same timed segment on a healthy cluster.  Gated:
  recovery must leave >= 0.8x of the ingest throughput -- donors serve
  SYNCPULL snapshots and journal tails from the same event loop that
  is absorbing the firehose.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.bank import SketchBank
from repro.service import QuantileClient, ServerThread

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

EPSILON = 0.01
DESIGN_N = 50_000_000
N_METRICS = 8

#: tuned service fast path (see DESIGN.md, "service fast path"): the
#: client defers sends until this many framed bytes queue up (one
#: scatter-gather ``sendmsg`` per ~4 batches of 4096 float64s), and the
#: shard flusher waits this long before draining so frames from several
#: socket reads collapse into one vectorized apply
COALESCE_BYTES = 128 * 1024
BATCH_WINDOW_S = 0.002


def _schedule(
    total_elements: int, batch: int, seed: int = 0
) -> List[Tuple[int, np.ndarray]]:
    """(metric index, values) batches, round-robin across metrics."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=total_elements)
    out = []
    for i, start in enumerate(range(0, total_elements, batch)):
        out.append((i % N_METRICS, data[start : start + batch]))
    return out


def _rate(elements: int, seconds: float) -> float:
    return elements / seconds if seconds > 0 else float("inf")


def bench_direct(
    total_elements: int, batch: int, rounds: int
) -> Dict[str, object]:
    """In-process SketchBank ingest: the 2x-target baseline."""
    schedule = _schedule(total_elements, batch)
    best = float("inf")
    for _ in range(rounds):
        bank = SketchBank(EPSILON, DESIGN_N, n_sketches=N_METRICS)
        t0 = time.perf_counter()
        for metric, values in schedule:
            bank.extend_pairs([(metric, values)])
        best = min(best, time.perf_counter() - t0)
    return {
        "batch": batch,
        "elements": total_elements,
        "seconds": round(best, 4),
        "elements_per_s": round(_rate(total_elements, best)),
    }


def bench_service(
    total_elements: int,
    batch: int,
    n_shards: int,
    rounds: int,
    data_dir: Optional[str] = None,
    idempotency: bool = True,
    windowed: bool = False,
) -> Dict[str, object]:
    """Pipelined client -> TCP -> asyncio server -> shard drain.

    ``windowed=True`` declares every metric as a sliding window
    (60s/10s), pricing the event-time path -- per-batch clock stamp,
    INGEST_AT journaling, ring-bucket placement -- against the plain
    ingest path under an otherwise identical workload.
    """
    schedule = _schedule(total_elements, batch)
    names = [f"bench/m{i}" for i in range(N_METRICS)]
    best = float("inf")
    for round_idx in range(rounds):
        run_dir = (
            os.path.join(data_dir, f"round{round_idx}") if data_dir else None
        )
        if run_dir:
            os.makedirs(run_dir, exist_ok=True)
        with ServerThread(
            data_dir=run_dir,
            n_shards=n_shards,
            snapshot_interval_s=None,
            batch_window_s=BATCH_WINDOW_S,
            # the direct baseline runs with obs hooks off, so the server
            # must too -- instrumentation cost is priced separately by
            # bench_hotpath's ``obs`` section, not double-charged here
            observability=False,
        ) as server:
            with QuantileClient(
                "127.0.0.1",
                server.port,
                idempotency=idempotency,
                send_coalesce_bytes=COALESCE_BYTES,
            ) as client:
                time_kwargs = (
                    {"window": 60.0, "slide": 10.0} if windowed else {}
                )
                for name in names:
                    client.create(
                        name, kind="fixed", eps=EPSILON, n=DESIGN_N,
                        **time_kwargs,
                    )
                t0 = time.perf_counter()
                for metric, values in schedule:
                    client.ingest_nowait(names[metric], values)
                client.flush()
                client.drain()
                elapsed = time.perf_counter() - t0
                _, _, n = client.query(names[0], [0.5])
                assert n > 0
        best = min(best, elapsed)
    return {
        "batch": batch,
        "shards": n_shards,
        "windowed": windowed,
        "batch_window_s": BATCH_WINDOW_S,
        "send_coalesce_bytes": COALESCE_BYTES,
        "elements": total_elements,
        "seconds": round(best, 4),
        "elements_per_s": round(_rate(total_elements, best)),
    }


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity, not inventory)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaling_driver(
    host: str,
    port: int,
    own: "set[int]",
    total: int,
    batch: int,
    conn,
) -> None:
    """One driver process: blast pipelined ingest at one cluster worker.

    Regenerates the shared schedule from the same seed and keeps only
    the batches of the metrics this driver's worker owns, so the union
    of all drivers is exactly the single-process workload.  Handshake:
    send ``("ready", n_elements)`` after creates, wait for ``"go"``,
    then send ``("done", seconds)`` after flush + drain.
    """
    from repro.service import QuantileClient

    names = [f"bench/m{i}" for i in range(N_METRICS)]
    schedule = [
        (m, values) for m, values in _schedule(total, batch) if m in own
    ]
    client = QuantileClient(host, port, send_coalesce_bytes=COALESCE_BYTES)
    for i in sorted(own):
        client.create(names[i], kind="fixed", eps=EPSILON, n=DESIGN_N)
    conn.send(("ready", int(sum(v.size for _, v in schedule))))
    conn.recv()  # "go"
    t0 = time.perf_counter()
    for metric, values in schedule:
        client.ingest_nowait(names[metric], values)
    client.flush()
    client.drain()
    conn.send(("done", time.perf_counter() - t0))
    client.close()


def bench_scaling(
    total_elements: int, batch: int, workers: int, rounds: int
) -> Dict[str, object]:
    """Aggregate ingest throughput of a *workers*-process cluster.

    Unlike ``bench_service`` (client thread and server thread share one
    process), every driver here is a separate OS process, so the
    measurement isolates server-side parallelism: wall time runs from
    the moment all drivers are connected and armed to the last drain.
    """
    import multiprocessing

    from repro.service import ClusterService
    from repro.service.registry import shard_of

    names = [f"bench/m{i}" for i in range(N_METRICS)]
    ctx = multiprocessing.get_context("spawn")
    best = float("inf")
    elements = 0
    for _ in range(rounds):
        with ClusterService(
            workers=workers,
            n_shards=4,
            snapshot_interval_s=None,
            batch_window_s=BATCH_WINDOW_S,
            observability=False,
        ) as cluster:
            conns = []
            procs = []
            for w in range(workers):
                own = {
                    i
                    for i, name in enumerate(names)
                    if shard_of(name, workers) == w
                }
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_scaling_driver,
                    args=(
                        "127.0.0.1",
                        cluster.ports[w],
                        own,
                        total_elements,
                        batch,
                        child_conn,
                    ),
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            elements = 0
            for conn in conns:
                status, n = conn.recv()
                assert status == "ready"
                elements += n
            t0 = time.perf_counter()
            for conn in conns:
                conn.send("go")
            for conn in conns:
                status, _secs = conn.recv()
                assert status == "done"
            elapsed = time.perf_counter() - t0
            for proc in procs:
                proc.join()
        best = min(best, elapsed)
    return {
        "workers": workers,
        "batch": batch,
        "elements": elements,
        "seconds": round(best, 4),
        "elements_per_s": round(_rate(elements, best)),
    }


def _cluster_driver(
    specs: "List[Tuple[str, str, int]]",
    vnodes: int,
    replication: int,
    total: int,
    batch: int,
    conn,
) -> None:
    """One driver process: pipelined replicated ingest via ClusterClient.

    Unlike ``_scaling_driver`` (which dials one worker directly and
    pre-shards the metric list), this drives the real routing layer:
    the consistent-hash ring decides placement, and every batch is
    replicated to its metric's R owners.  The client-side routing cost
    is part of what the cluster section prices.
    """
    from repro.cluster import ClusterClient
    from repro.cluster.manifest import ClusterManifest, NodeSpec

    manifest = ClusterManifest(
        nodes=[
            NodeSpec(id=nid, host=host, port=port)
            for nid, host, port in specs
        ],
        replication=replication,
        vnodes=vnodes,
    )
    names = [f"bench/m{i}" for i in range(N_METRICS)]
    schedule = _schedule(total, batch)
    client = ClusterClient(
        manifest, send_coalesce_bytes=COALESCE_BYTES
    )
    for name in names:
        client.create(name, kind="fixed", eps=EPSILON, n=DESIGN_N)
    conn.send(("ready", int(sum(v.size for _, v in schedule))))
    conn.recv()  # "go"
    t0 = time.perf_counter()
    for metric, values in schedule:
        client.ingest_nowait(names[metric], values)
    client.flush()
    client.drain()
    conn.send(("done", time.perf_counter() - t0))
    client.close()


def bench_cluster(
    total_elements: int,
    batch: int,
    nodes: int,
    replication: int,
    rounds: int,
) -> Dict[str, object]:
    """Replicated ingest throughput of an N-node consistent-hash cluster.

    Ephemeral nodes (no journals), obs off, same coalescing -- the same
    conditions as the ``scaling`` section, so ``nodes=1, R=1`` is
    directly comparable to ``scaling.by_workers["1"]`` and the gap is
    the routing layer alone.  ``elements`` counts *logical* elements;
    at R=2 every one of them is written twice, so the per-node rate
    already prices the replication overhead.
    """
    import multiprocessing

    from repro.cluster import ClusterCoordinator

    ctx = multiprocessing.get_context("spawn")
    best = float("inf")
    elements = 0
    for _ in range(rounds):
        with ClusterCoordinator(
            nodes=nodes,
            replication=replication,
            n_shards=4,
            snapshot_interval_s=None,
            batch_window_s=BATCH_WINDOW_S,
            observability=False,
        ) as coord:
            specs = [
                (s.id, s.host, s.port) for s in coord.manifest.nodes
            ]
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_cluster_driver,
                args=(
                    specs,
                    coord.vnodes,
                    replication,
                    total_elements,
                    batch,
                    child_conn,
                ),
            )
            proc.start()
            child_conn.close()
            status, elements = parent_conn.recv()
            assert status == "ready"
            t0 = time.perf_counter()
            parent_conn.send("go")
            status, _secs = parent_conn.recv()
            assert status == "done"
            elapsed = time.perf_counter() - t0
            proc.join()
        best = min(best, elapsed)
    rate = _rate(elements, best)
    return {
        "nodes": nodes,
        "replication": replication,
        "batch": batch,
        "elements": elements,
        "seconds": round(best, 4),
        "elements_per_s": round(rate),
        "elements_per_s_per_node": round(rate / nodes),
    }


def bench_rebalance(
    total_elements: int, batch: int, rounds: int
) -> Dict[str, object]:
    """Ingest throughput while a node re-syncs in the background.

    Two timed runs of the same 3-node R=2 journal-backed cluster.  Both
    seed half the schedule first (so the victim has real state to lose)
    and time the second half; the ``during_resync`` run additionally
    SIGKILLs the senior owner after the seed, restarts it, and re-syncs
    it on a background thread **while** the timed ingest races it.  The
    ratio prices what recovery steals from the write path -- donors
    serve SYNCPULL snapshots and journal tails out of the same event
    loop that is absorbing the firehose.  Gated at >= 0.8x.
    """
    import threading

    from repro.cluster import ClusterCoordinator

    names = [f"bench/m{i}" for i in range(N_METRICS)]
    schedule = _schedule(total_elements, batch)
    half = len(schedule) // 2
    timed_elements = int(sum(v.size for _, v in schedule[half:]))

    def run_once(with_resync: bool) -> Tuple[float, float]:
        with tempfile.TemporaryDirectory() as tmp:
            with ClusterCoordinator(
                nodes=3,
                replication=2,
                data_dir=tmp,
                n_shards=4,
                snapshot_interval_s=None,
                batch_window_s=BATCH_WINDOW_S,
                observability=False,
            ) as coord:
                with coord.client(
                    send_coalesce_bytes=COALESCE_BYTES
                ) as client:
                    for name in names:
                        client.create(
                            name, kind="fixed", eps=EPSILON, n=DESIGN_N
                        )
                    for metric, values in schedule[:half]:
                        client.ingest_nowait(names[metric], values)
                    client.flush()
                    client.drain()
                    resync_s = 0.0
                    thread = None
                    if with_resync:
                        victim = coord.manifest.ring().owners(
                            names[0], 2
                        )[0]
                        coord.kill_node(victim)
                        coord.poll()
                        client.mark_down(victim)
                        coord.restart_node(victim, resync=False)

                        def _resync() -> None:
                            nonlocal resync_s
                            rt0 = time.perf_counter()
                            # a firehose outruns the default round cap;
                            # convergence comes once ingest tails off
                            coord.resync_node(victim, max_rounds=4096)
                            resync_s = time.perf_counter() - rt0

                        thread = threading.Thread(target=_resync)
                    t0 = time.perf_counter()
                    if thread is not None:
                        thread.start()
                    for metric, values in schedule[half:]:
                        client.ingest_nowait(names[metric], values)
                    client.flush()
                    client.drain()
                    elapsed = time.perf_counter() - t0
                    if thread is not None:
                        thread.join()
                    return elapsed, resync_s

    base_best = float("inf")
    during_best = float("inf")
    resync_s_at_best = 0.0
    for round_i in range(rounds):
        # alternate order round by round, same reasoning as resilience
        order = [False, True] if round_i % 2 == 0 else [True, False]
        for with_resync in order:
            elapsed, resync_s = run_once(with_resync)
            if with_resync and elapsed < during_best:
                during_best = elapsed
                resync_s_at_best = resync_s
            elif not with_resync:
                base_best = min(base_best, elapsed)
    base_rate = _rate(timed_elements, base_best)
    during_rate = _rate(timed_elements, during_best)
    return {
        "nodes": 3,
        "replication": 2,
        "batch": batch,
        "timed_elements": timed_elements,
        "baseline": {
            "seconds": round(base_best, 4),
            "elements_per_s": round(base_rate),
        },
        "during_resync": {
            "seconds": round(during_best, 4),
            "elements_per_s": round(during_rate),
            "resync_seconds": round(resync_s_at_best, 4),
        },
        "throughput_ratio": round(during_rate / base_rate, 3),
        "target_throughput_ratio": 0.8,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced matrix for the CI perf smoke job -- still large "
        "enough (2M elements) that the 1.3x gate is meaningful",
    )
    parser.add_argument("--out", default=OUT_PATH, help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        # the batch window (2 ms/flush) and server setup are fixed
        # costs: below ~2M elements they dominate and the slowdown gate
        # measures the harness, not the protocol
        total, rounds = 2_000_000, 2
        batch_sizes = [4096, 16384]
        shard_counts = [1, 4]
        durable_batch = 4096
        worker_counts = [1, 2]
        scaling_batch = 16384
    else:
        total, rounds = 4_000_000, 3
        batch_sizes = [256, 1024, 4096, 16384, 65536]
        shard_counts = [1, 2, 4, 8]
        durable_batch = 4096
        worker_counts = [1, 2, 4]
        scaling_batch = 16384

    direct = {
        str(b): bench_direct(total, b, rounds) for b in batch_sizes
    }

    service: Dict[str, Dict[str, object]] = {}
    for batch in batch_sizes:
        per_shard = {}
        for shards in shard_counts:
            per_shard[str(shards)] = bench_service(
                total, batch, shards, rounds
            )
        baseline = direct[str(batch)]["elements_per_s"]
        best_shards = max(
            per_shard.values(), key=lambda e: e["elements_per_s"]
        )
        service[str(batch)] = {
            "by_shards": per_shard,
            "best_elements_per_s": best_shards["elements_per_s"],
            "slowdown_vs_direct": round(
                baseline / best_shards["elements_per_s"], 3
            ),
        }

    with tempfile.TemporaryDirectory() as tmp:
        durable = bench_service(
            total, durable_batch, shard_counts[-1], rounds, data_dir=tmp
        )
    durable["slowdown_vs_direct"] = round(
        direct[str(durable_batch)]["elements_per_s"]
        / durable["elements_per_s"],
        3,
    )

    # resilience overhead: identical fault-free workload, tokens on vs
    # off.  The two configs are interleaved round by round and the
    # within-round order alternates -- box throughput drifts on a scale
    # of minutes and the first run after server setup is often the slow
    # one, so either a back-to-back block or a fixed on-then-off order
    # would measure the drift, not the tokens -- and the gate is tight
    # (5%).
    res_rounds = max(rounds, 5)
    tokens_on: Dict[str, object] = {}
    tokens_off: Dict[str, object] = {}
    for round_i in range(res_rounds):
        for idem in ([True, False] if round_i % 2 == 0 else [False, True]):
            result = bench_service(
                total, durable_batch, shard_counts[-1], 1, idempotency=idem
            )
            best = tokens_on if idem else tokens_off
            if not best or result["seconds"] < best["seconds"]:
                best.clear()
                best.update(result)
    overhead_ratio = round(
        tokens_off["elements_per_s"] / tokens_on["elements_per_s"], 3
    )
    resilience = {
        "tokens_on": tokens_on,
        "tokens_off": tokens_off,
        "overhead_ratio": overhead_ratio,
        "target_overhead_ratio": 1.05,
    }

    # windowed ingest tax: identical workload into sliding-window
    # metrics (60s/10s) vs plain fixed metrics.  Interleaved round by
    # round with alternating order, same reasoning as the resilience
    # pair above: the gate is a throughput *ratio* and box drift would
    # otherwise dominate it.
    win_batch = durable_batch
    win_rounds = max(rounds, 3)
    win_on: Dict[str, object] = {}
    win_off: Dict[str, object] = {}
    for round_i in range(win_rounds):
        for use_win in ([True, False] if round_i % 2 == 0 else [False, True]):
            result = bench_service(
                total, win_batch, shard_counts[-1], 1, windowed=use_win
            )
            best = win_on if use_win else win_off
            if not best or result["seconds"] < best["seconds"]:
                best.clear()
                best.update(result)
    windows_ratio = round(
        win_on["elements_per_s"] / win_off["elements_per_s"], 3
    )
    windows = {
        "batch": win_batch,
        "window_s": 60.0,
        "slide_s": 10.0,
        "windowed": win_on,
        "unwindowed": win_off,
        "throughput_ratio": windows_ratio,
        "target_throughput_ratio": 0.7,
    }

    effective_cpus = _effective_cpus()
    by_workers = {
        str(w): bench_scaling(total, scaling_batch, w, rounds)
        for w in worker_counts
    }
    rate_1 = by_workers["1"]["elements_per_s"]
    speedups = {
        str(w): round(by_workers[str(w)]["elements_per_s"] / rate_1, 3)
        for w in worker_counts
    }
    # the >1.6x two-worker gate is meaningless without a second core to
    # run on; record the honest numbers either way and let the gate key
    # off the *effective* affinity, not the hardware inventory
    scaling = {
        "batch": scaling_batch,
        "by_workers": by_workers,
        "speedup_vs_1_worker": speedups,
        "effective_cpus": effective_cpus,
        "gate_applicable": effective_cpus >= 2,
        "target_speedup_at_2_workers": 1.6,
    }

    # the multi-node cluster (repro.cluster): same ephemeral, obs-off
    # conditions as ``scaling``, so nodes=1/R=1 isolates the
    # consistent-hash routing layer against by_workers["1"], and R=2
    # prices replication (every logical element written twice)
    cluster_configs = (
        [(1, 1), (2, 1), (2, 2)]
        if args.quick
        else [(1, 1), (2, 1), (2, 2), (3, 2)]
    )
    by_cluster = {
        f"{n}x{r}": bench_cluster(total, scaling_batch, n, r, rounds)
        for n, r in cluster_configs
    }
    cluster_ratio = round(
        by_cluster["1x1"]["elements_per_s"] / rate_1, 3
    )
    cluster = {
        "batch": scaling_batch,
        "by_config": by_cluster,
        "per_node_ratio_vs_1_worker": cluster_ratio,
        "target_per_node_ratio": 0.8,
    }

    # recovery tax: ingest throughput with a background re-sync racing
    # the write path on the same 3-node R=2 journal-backed cluster.
    # Like the scaling gate, the 0.8x floor needs a second core: on a
    # 1-core affinity the re-sync thread and the driving client fight
    # for the same GIL and the ratio prices the harness, not recovery.
    rebalance = bench_rebalance(total, scaling_batch, rounds)
    rebalance["gate_applicable"] = effective_cpus >= 2

    gate_batches = [b for b in batch_sizes if b >= 4096]
    report = {
        "meta": {
            "benchmark": "service",
            "quick": args.quick,
            "eps": EPSILON,
            "design_n": DESIGN_N,
            "metrics": N_METRICS,
            "elements": total,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "effective_cpus": effective_cpus,
        },
        "direct": direct,
        "service": service,
        "durable": durable,
        "resilience": resilience,
        "windows": windows,
        "scaling": scaling,
        "cluster": cluster,
        "rebalance": rebalance,
        "targets": {
            "max_slowdown_at_4096_plus": max(
                service[str(b)]["slowdown_vs_direct"] for b in gate_batches
            ),
            "target_slowdown": 1.3,
            "scaling_speedup_at_2_workers": speedups.get("2"),
            "scaling_gate_applicable": scaling["gate_applicable"],
            "target_speedup_at_2_workers": 1.6,
            "cluster_per_node_ratio_at_1x1": cluster_ratio,
            "target_cluster_per_node_ratio": 0.8,
            "rebalance_throughput_ratio": rebalance["throughput_ratio"],
            "rebalance_gate_applicable": rebalance["gate_applicable"],
            "target_rebalance_throughput_ratio": 0.8,
            "windowed_ingest_ratio": windows_ratio,
            "target_windowed_ingest_ratio": 0.7,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    for batch in batch_sizes:
        entry = service[str(batch)]
        print(
            f"batch {batch:>6}: direct "
            f"{direct[str(batch)]['elements_per_s']:>12,} el/s, "
            f"service best {entry['best_elements_per_s']:>12,} el/s "
            f"({entry['slowdown_vs_direct']}x slower)"
        )
    print(
        f"durable (journal on, batch {durable_batch}): "
        f"{durable['elements_per_s']:,} el/s "
        f"({durable['slowdown_vs_direct']}x slower than direct)"
    )
    print(
        f"resilience (batch {durable_batch}): tokens on "
        f"{tokens_on['elements_per_s']:,} el/s, off "
        f"{tokens_off['elements_per_s']:,} el/s "
        f"({overhead_ratio}x overhead, target <= 1.05x)"
    )
    print(
        f"windows (batch {win_batch}, 60s/10s sliding): windowed "
        f"{win_on['elements_per_s']:,} el/s, plain "
        f"{win_off['elements_per_s']:,} el/s "
        f"({windows_ratio}x, target >= 0.7x)"
    )
    for w in worker_counts:
        entry = by_workers[str(w)]
        print(
            f"scaling {w} worker(s): {entry['elements_per_s']:>12,} el/s "
            f"({speedups[str(w)]}x vs 1 worker)"
        )
    applicable = (
        "applies" if scaling["gate_applicable"]
        else f"not applicable (affinity={effective_cpus} core)"
    )
    print(
        f"scaling gate (>1.6x at 2 workers): {applicable}"
    )
    for key, entry in by_cluster.items():
        print(
            f"cluster {key} (nodes x R): "
            f"{entry['elements_per_s']:>12,} el/s "
            f"({entry['elements_per_s_per_node']:,} per node)"
        )
    print(
        f"cluster gate: 1x1 reaches {cluster_ratio}x of the 1-worker "
        f"ClusterService (target >= 0.8x)"
    )
    print(
        f"rebalance (3x2, batch {scaling_batch}): baseline "
        f"{rebalance['baseline']['elements_per_s']:,} el/s, during "
        f"re-sync {rebalance['during_resync']['elements_per_s']:,} el/s "
        f"({rebalance['throughput_ratio']}x, target >= 0.8x; re-sync "
        f"took {rebalance['during_resync']['resync_seconds']}s)"
    )
    print(
        f"gate: worst slowdown at batch >= 4096 is "
        f"{report['targets']['max_slowdown_at_4096_plus']}x "
        f"(target <= 1.3x)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
