"""Figure 7: memory requirements vs N at epsilon = 0.01.

Sweeps N over a log grid and reports the total memory ``b * k`` for the
three deterministic algorithms.  The reproduction targets:

* the new algorithm is the uniform winner;
* Munro-Paterson shows the "kinks" Section 4.6 explains (memory drops
  roughly in half each time the optimal b increments);
* Alsabti-Ranka-Singh grows like sqrt(N/eps) -- an exponential curve
  against log N -- while the other two grow poly-logarithmically.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import ascii_series, format_table
from repro.core.parameters import optimal_parameters

EPSILON = 0.01


def build_figure7() -> str:
    ns = [int(n) for n in np.logspace(5, 9, 33)]
    series = {
        "new": [
            optimal_parameters(EPSILON, n, policy="new").memory for n in ns
        ],
        "munro-paterson": [
            optimal_parameters(EPSILON, n, policy="mp").memory for n in ns
        ],
        "alsabti-ranka-singh": [
            optimal_parameters(EPSILON, n, policy="ars").memory for n in ns
        ],
    }
    rows = [
        [f"{n:.2e}", series["new"][i], series["munro-paterson"][i],
         series["alsabti-ranka-singh"][i]]
        for i, n in enumerate(ns)
    ]
    table = format_table(
        ["N", "new", "munro-paterson", "alsabti-ranka-singh"],
        rows,
        title=f"Total memory bk vs N at eps = {EPSILON}",
    )
    profile = ascii_series(
        [float(n) for n in ns], series, log_y=True, width=56
    )

    # -- reproduction checks ------------------------------------------------
    for i in range(len(ns)):
        assert series["new"][i] <= series["munro-paterson"][i]
        assert series["new"][i] <= series["alsabti-ranka-singh"][i]
    # MP kinks: memory decreases somewhere along the sweep
    mp = series["munro-paterson"]
    assert any(b < a for a, b in zip(mp, mp[1:]))
    # ARS explodes: 1e9/1e5 ratio ~ sqrt(1e4) = 100x
    ars = series["alsabti-ranka-singh"]
    assert ars[-1] / ars[0] > 50
    # new stays polylog: far less than 100x over the same range
    assert series["new"][-1] / series["new"][0] < 40
    return table + "\n\nlog-scale profile (x: N, y: log10 bk):\n" + profile


def test_figure7(benchmark):
    output = benchmark(build_figure7)
    emit("figure7", output)


if __name__ == "__main__":
    print(build_figure7())
