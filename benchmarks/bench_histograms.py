"""Application bench: equi-depth (quantile-based) vs equi-width histograms.

The paper's query-optimisation application [1, 2, 3] wants equi-depth
histograms precisely because equal-*width* buckets fail on skewed columns
(Poosala et al. [3]).  This bench builds both, at the same bucket count,
over columns of increasing skew, and measures range-selectivity error for
predicates concentrated where the data lives.

Expected shape: on uniform data the two are comparable; as skew grows the
equi-width estimator degrades sharply while the equi-depth one stays
within its a-priori bound.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit

from repro.analysis import format_table
from repro.histogram import (
    build_compressed_histogram,
    build_equiwidth_histogram,
    build_histogram,
    selectivity_experiment,
    true_selectivity,
)

N = 200_000
BUCKETS = 20
EPSILON = 0.002


def _columns(rng):
    # the last column mixes point masses into a continuous tail: the case
    # compressed histograms [3] exist for
    n_heavy = int(N * 0.5)
    mixed = np.concatenate(
        [
            rng.choice([10.0, 25.0, 40.0], size=n_heavy, p=[0.5, 0.3, 0.2]),
            rng.lognormal(3, 1, N - n_heavy),
        ]
    )
    rng.shuffle(mixed)
    return [
        ("uniform", rng.uniform(0, 100, N)),
        ("normal", rng.normal(50, 10, N)),
        ("lognormal(s=1)", rng.lognormal(0, 1, N)),
        ("lognormal(s=2)", rng.lognormal(0, 2, N)),
        ("pareto", (rng.pareto(1.5, N) + 1.0)),
        ("heavy-mixture", mixed),
    ]


def build_comparison() -> str:
    rng = np.random.default_rng(3)
    rows = []
    errors = {}
    for name, data in _columns(rng):
        depth = build_histogram(data, BUCKETS, epsilon=EPSILON)
        width = build_equiwidth_histogram(data, BUCKETS)
        compressed = build_compressed_histogram(data, BUCKETS, epsilon=EPSILON)
        # predicates drawn between the 5th and 95th percentile: the range
        # an optimiser actually sees
        lo_v, hi_v = np.quantile(data, [0.05, 0.95])
        rng2 = np.random.default_rng(7)
        predicates = [
            tuple(sorted(rng2.uniform(lo_v, hi_v, 2))) for _ in range(200)
        ]
        depth_err = max(
            r.absolute_error
            for r in selectivity_experiment(data, depth, predicates)
        )
        width_err = max(
            abs(
                width.selectivity(lo, hi)
                - true_selectivity(data, lo, hi)
            )
            for lo, hi in predicates
        )
        compressed_err = max(
            abs(
                compressed.selectivity(lo, hi)
                - true_selectivity(data, lo, hi)
            )
            for lo, hi in predicates
        )
        errors[name] = (depth_err, width_err, compressed_err)
        rows.append(
            [
                name,
                f"{depth_err:.4f}",
                f"{width_err:.4f}",
                f"{compressed_err:.4f}",
                f"{depth.selectivity_error_bound():.4f}",
            ]
        )
    table = format_table(
        [
            "column",
            "equi-depth max err",
            "equi-width max err",
            "compressed max err",
            "equi-depth a-priori bound",
        ],
        rows,
        title=(
            f"Range-selectivity error, {BUCKETS} buckets, N={N} "
            f"(boundary eps={EPSILON})"
        ),
    )

    # -- shape checks ---------------------------------------------------------
    for name, (depth_err, _width_err, _comp_err) in errors.items():
        assert depth_err <= 2 * (1 / BUCKETS + EPSILON) + 1e-9, name
    # on heavy skew, equi-width is far worse
    assert errors["lognormal(s=2)"][1] > 2 * errors["lognormal(s=2)"][0]
    assert errors["pareto"][1] > 2 * errors["pareto"][0]
    # on point-mass mixtures, the compressed histogram [3] beats plain
    # equi-depth (singleton buckets absorb the heavy values exactly)
    assert errors["heavy-mixture"][2] <= errors["heavy-mixture"][0]
    return table


def test_histograms(benchmark):
    output = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    emit("histograms_depth_vs_width", output)


if __name__ == "__main__":
    print(build_comparison())
