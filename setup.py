"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (required by PEP 660 editable builds on older setuptools) is not
available: pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
